// JournalSink: batched group commit on a dedicated thread.
//
// fsync is the expensive step of journaling — milliseconds on real disks —
// and the service layer appends completion records from every campaign
// step. Synchronous per-append fsync would serialise the whole manager
// behind the disk. Instead, writers push bytes to the kernel themselves
// (JournalWriter::Flush, cheap) and hand the *durability* step to the
// sink: Schedule(writer) marks the journal dirty, and the sink thread
// coalesces all marks since its last pass into one FsyncDomain::Commit —
// a per-fd fdatasync ladder when the dirty set is small, or one
// fdatasync of a fleet commit log when it is large. N campaigns stepping
// concurrently therefore cost at most one disk flush per batching
// window, not one per journal (let alone per applied task).
//
// Durability contract: a record is power-loss durable only after the sink
// has committed it (or after an explicit JournalWriter::Sync, which the
// manager issues at terminal states). A crash can lose the tail of a
// journal back to the last commit — recovery handles exactly that by
// applying the fleet commit log (persist::ApplyCommitLog), truncating to
// the last intact record and re-running the lost steps, which Algorithm
// 1's determinism makes byte-identical.
#ifndef INCENTAG_PERSIST_JOURNAL_SINK_H_
#define INCENTAG_PERSIST_JOURNAL_SINK_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "src/persist/fsync_domain.h"
#include "src/persist/journal.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace persist {

struct JournalSinkOptions {
  // The sink sleeps this long after a pass before syncing again, widening
  // the coalescing window; 0 syncs as fast as the dirty set refills.
  int64_t batch_interval_us = 500;
  // Fleet commit log for large dirty sets (see persist::FsyncDomain);
  // empty keeps every pass on the per-fd ladder.
  std::string commit_log_path;
  // Dirty sets larger than this commit through the log.
  size_t commit_log_threshold = 4;
  // Log size that triggers a checkpoint (sync journals, truncate log).
  int64_t commit_log_checkpoint_bytes = 4 << 20;
  // Retry ladder for transient per-journal sync failures, and the
  // health callbacks the domain invokes from the sink thread (see
  // FsyncDomainOptions for the exact contract). The service layer wires
  // these to fleet degraded mode and per-campaign quarantine.
  SyncRetryPolicy retry;
  std::function<void(const util::Status&)> on_storage_error;
  std::function<void()> on_storage_ok;
  std::function<void(JournalWriter*, const util::Status&)> on_writer_sick;
};

class JournalSink {
 public:
  explicit JournalSink(JournalSinkOptions options = {});
  ~JournalSink();  // implies Stop()

  JournalSink(const JournalSink&) = delete;
  JournalSink& operator=(const JournalSink&) = delete;

  // Registers `writer` with the shared fsync domain. Precondition: the
  // journal file is durable up to its current size (the manager tracks
  // right after the Submit sync / recovery truncation). Untracked
  // writers still commit correctly — they just always take the per-fd
  // path. Call Untrack before destroying a tracked writer.
  void Track(JournalWriter* writer);
  void Untrack(JournalWriter* writer);

  // The shared fsync domain, for tests and bench instrumentation.
  FsyncDomain& domain() { return domain_; }

  // Marks `writer` as having unsynced appends. The writer must stay alive
  // until a Drain() (or Stop()) after its last Schedule.
  void Schedule(JournalWriter* writer) EXCLUDES(mu_);

  // Blocks until every journal scheduled before the call has been synced.
  void Drain() EXCLUDES(mu_);

  // Drains, then joins the sink thread. Idempotent; Schedule after Stop
  // syncs inline on the calling thread (teardown straggler safety).
  void Stop() EXCLUDES(mu_);

  // Total fsync passes and journals synced, for tests and bench output.
  int64_t syncs() const EXCLUDES(mu_);

 private:
  void Loop() EXCLUDES(mu_);

  JournalSinkOptions options_;
  FsyncDomain domain_;
  mutable util::Mutex mu_;
  util::CondVar dirty_cv_;   // signals the sink thread
  util::CondVar synced_cv_;  // signals Drain waiters
  std::unordered_set<JournalWriter*> dirty_ GUARDED_BY(mu_);
  // Monotonically counts sync passes begun / fully fsynced.
  int64_t epoch_started_ GUARDED_BY(mu_) = 0;
  int64_t epoch_finished_ GUARDED_BY(mu_) = 0;
  int64_t journals_synced_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  bool stopped_ GUARDED_BY(mu_) = false;
  std::once_flag join_once_;
  std::thread thread_;
};

}  // namespace persist
}  // namespace incentag

#endif  // INCENTAG_PERSIST_JOURNAL_SINK_H_
