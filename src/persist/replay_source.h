// ReplayCompletionSource: re-drive a recorded crowd trace.
//
// A campaign journal's CompletionRecords are a complete trace of the
// crowd's contribution to one campaign: which assignment completed, in
// application order. This adapter implements service::CompletionSource
// over that trace (the ROADMAP's "replay-from-log" completion adapter),
// so benches and tests can re-run a recorded campaign without taggers —
// deterministically, at full speed — and the manager's step protocol
// produces the same RunReport the original run did.
//
// Semantics: tasks handed to SubmitTasks complete synchronously, in seq
// order, for as long as the trace has records; each record is checked
// against the task it completes (same seq, same resource) so a trace from
// a *different* campaign is rejected instead of silently corrupting
// results. When the trace runs out, `tail_policy` decides:
//   * kCompleteTail (default): remaining and future tasks complete
//     inline — the campaign finishes past the end of the recording (a
//     trace of a finished campaign replays to the identical report).
//   * kHaltAtEnd: SubmitTasks reports failure, and the CampaignManager
//     finalizes the campaign as kFailed("completion source closed") —
//     useful to reconstruct exactly the recorded prefix and no more.
//
// One instance replays one campaign's trace; it is not meant to be shared
// across campaigns (seq checking is per-trace).
#ifndef INCENTAG_PERSIST_REPLAY_SOURCE_H_
#define INCENTAG_PERSIST_REPLAY_SOURCE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/persist/journal.h"
#include "src/service/completion_source.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace persist {

class ReplayCompletionSource : public service::CompletionSource {
 public:
  enum class TailPolicy {
    kCompleteTail,
    kHaltAtEnd,
  };

  explicit ReplayCompletionSource(
      std::vector<CompletionRecord> trace,
      TailPolicy tail_policy = TailPolicy::kCompleteTail);

  // Loads the trace from a journal file (the SubmitRecord is ignored —
  // pair with ReadJournal when you also need the campaign inputs).
  static util::Result<std::unique_ptr<ReplayCompletionSource>> Open(
      const std::string& journal_path,
      TailPolicy tail_policy = TailPolicy::kCompleteTail);

  bool SubmitTasks(const std::vector<service::TaskHandle>& tasks,
                   const CompletionFn& done) override EXCLUDES(mu_);

  // Records not yet replayed.
  size_t remaining() const EXCLUDES(mu_);
  // Non-OK once a submitted task contradicted the trace; the source stops
  // completing tasks at that point.
  util::Status error() const EXCLUDES(mu_);

 private:
  const std::vector<CompletionRecord> trace_;
  const TailPolicy tail_policy_;
  mutable util::Mutex mu_;
  size_t next_ GUARDED_BY(mu_) = 0;  // index into trace_
  util::Status error_ GUARDED_BY(mu_);
};

}  // namespace persist
}  // namespace incentag

#endif  // INCENTAG_PERSIST_REPLAY_SOURCE_H_
