#include "src/persist/journal.h"

#include <cstring>

#include "src/util/crc32.h"

namespace incentag {
namespace persist {

namespace {

// ---- little-endian primitive encoding --------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// Bounds-checked cursor over a record body.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t raw;
    if (!GetU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }

  bool GetString(std::string* v) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

}  // namespace

// ---- record bodies ----------------------------------------------------

std::string EncodeSubmitRecord(const SubmitRecord& record) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(RecordType::kSubmit));
  PutU32(&out, record.format_version);
  PutString(&out, record.name);
  PutString(&out, record.strategy_name);
  PutU64(&out, record.seed);
  PutI64(&out, record.options.budget);
  PutU32(&out, static_cast<uint32_t>(record.options.omega));
  PutI64(&out, record.options.under_tagged_threshold);
  PutI64(&out, record.options.batch_size);
  PutU32(&out, static_cast<uint32_t>(record.options.checkpoints.size()));
  for (int64_t checkpoint : record.options.checkpoints) {
    PutI64(&out, checkpoint);
  }
  return out;
}

std::string EncodeCompletionRecord(const CompletionRecord& record) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(RecordType::kCompletion));
  PutU64(&out, record.seq);
  PutU32(&out, record.resource);
  return out;
}

util::Status DecodeSubmitRecord(std::string_view body, SubmitRecord* out) {
  Decoder in(body);
  uint8_t type;
  if (!in.GetU8(&type) ||
      type != static_cast<uint8_t>(RecordType::kSubmit)) {
    return util::Status::Corruption("not a submit record");
  }
  uint32_t omega = 0;
  uint32_t num_checkpoints = 0;
  if (!in.GetU32(&out->format_version) || !in.GetString(&out->name) ||
      !in.GetString(&out->strategy_name) || !in.GetU64(&out->seed) ||
      !in.GetI64(&out->options.budget) || !in.GetU32(&omega) ||
      !in.GetI64(&out->options.under_tagged_threshold) ||
      !in.GetI64(&out->options.batch_size) || !in.GetU32(&num_checkpoints)) {
    return util::Status::Corruption("short submit record");
  }
  if (out->format_version != kJournalFormatVersion) {
    return util::Status::Corruption(
        "unsupported journal format version " +
        std::to_string(out->format_version));
  }
  out->options.omega = static_cast<int>(omega);
  out->options.checkpoints.clear();
  out->options.checkpoints.reserve(num_checkpoints);
  for (uint32_t i = 0; i < num_checkpoints; ++i) {
    int64_t checkpoint;
    if (!in.GetI64(&checkpoint)) {
      return util::Status::Corruption("short submit record checkpoints");
    }
    out->options.checkpoints.push_back(checkpoint);
  }
  if (!in.exhausted()) {
    return util::Status::Corruption("trailing bytes in submit record");
  }
  return util::Status::OK();
}

util::Status DecodeCompletionRecord(std::string_view body,
                                    CompletionRecord* out) {
  Decoder in(body);
  uint8_t type;
  if (!in.GetU8(&type) ||
      type != static_cast<uint8_t>(RecordType::kCompletion)) {
    return util::Status::Corruption("not a completion record");
  }
  if (!in.GetU64(&out->seq) || !in.GetU32(&out->resource) ||
      !in.exhausted()) {
    return util::Status::Corruption("malformed completion record");
  }
  return util::Status::OK();
}

// ---- writer ------------------------------------------------------------

util::Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, int64_t truncate_to) {
  std::unique_ptr<JournalWriter> writer(new JournalWriter(path));
  INCENTAG_RETURN_IF_ERROR(writer->file_.Open(path, truncate_to));
  return writer;
}

util::Status JournalWriter::AppendFramed(std::string_view body) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  // The CRC covers the length word too, so a bit-flip in the length is
  // detected like any payload damage instead of silently reframing.
  uint32_t crc = util::Crc32(std::string_view(frame.data(), 4));
  crc = util::Crc32(body, crc);
  PutU32(&frame, crc);
  frame.append(body.data(), body.size());
  std::lock_guard<std::mutex> lock(mu_);
  return file_.Append(frame);
}

util::Status JournalWriter::AppendSubmit(const SubmitRecord& record) {
  return AppendFramed(EncodeSubmitRecord(record));
}

util::Status JournalWriter::AppendCompletion(const CompletionRecord& record) {
  return AppendFramed(EncodeCompletionRecord(record));
}

util::Status JournalWriter::AppendCancel() {
  std::string body;
  PutU8(&body, static_cast<uint8_t>(RecordType::kCancel));
  return AppendFramed(body);
}

util::Status JournalWriter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return file_.Flush();
}

util::Status JournalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return file_.Sync();
}

// ---- reader ------------------------------------------------------------

util::Result<JournalContents> ReadJournal(const std::string& path) {
  auto data = util::ReadFileToString(path);
  if (!data.ok()) return data.status();
  const std::string& bytes = data.value();

  JournalContents out;
  out.tail_status = util::Status::OK();
  size_t pos = 0;
  bool& saw_submit = out.has_submit;
  while (pos < bytes.size()) {
    // Frame header. A short header or short payload is a torn tail write:
    // stop and report the bytes up to the previous record as valid.
    if (bytes.size() - pos < kFrameHeaderBytes) {
      out.tail_status = util::Status::Corruption(
          "torn frame header at offset " + std::to_string(pos));
      break;
    }
    Decoder header(std::string_view(bytes).substr(pos, kFrameHeaderBytes));
    uint32_t length = 0;
    uint32_t crc = 0;
    header.GetU32(&length);
    header.GetU32(&crc);
    if (bytes.size() - pos - kFrameHeaderBytes < length) {
      out.tail_status = util::Status::Corruption(
          "torn record payload at offset " + std::to_string(pos));
      break;
    }
    const std::string_view body =
        std::string_view(bytes).substr(pos + kFrameHeaderBytes, length);
    uint32_t want_crc =
        util::Crc32(std::string_view(bytes).substr(pos, 4));
    want_crc = util::Crc32(body, want_crc);
    if (want_crc != crc) {
      // A torn append is a *prefix* of a valid record, so a fully
      // present frame with a bad CRC can only be the unsynced garbage at
      // the physical end of the file. The same damage followed by more
      // data is mid-journal bit rot: fsynced records after it would be
      // silently truncated if we called it a tail, so fail loudly.
      if (pos + kFrameHeaderBytes + length == bytes.size()) {
        out.tail_status = util::Status::Corruption(
            "crc mismatch at offset " + std::to_string(pos));
        break;
      }
      return util::Status::Corruption(
          "crc mismatch mid-journal at offset " + std::to_string(pos) +
          " of " + path);
    }

    // An intact frame that fails to decode is not a torn tail — it is
    // structural corruption mid-journal, and recovery must not guess.
    if (body.empty()) {
      return util::Status::Corruption("empty record at offset " +
                                      std::to_string(pos));
    }
    const auto type = static_cast<uint8_t>(body[0]);
    if (type == static_cast<uint8_t>(RecordType::kSubmit)) {
      if (saw_submit) {
        return util::Status::Corruption("duplicate submit record");
      }
      INCENTAG_RETURN_IF_ERROR(DecodeSubmitRecord(body, &out.submit));
      saw_submit = true;
    } else if (type == static_cast<uint8_t>(RecordType::kCompletion)) {
      if (!saw_submit) {
        return util::Status::Corruption(
            "completion record before submit record");
      }
      if (out.cancelled) {
        return util::Status::Corruption(
            "completion record after cancel record");
      }
      CompletionRecord record;
      INCENTAG_RETURN_IF_ERROR(DecodeCompletionRecord(body, &record));
      if (record.seq != out.completions.size()) {
        return util::Status::Corruption(
            "completion seq gap at offset " + std::to_string(pos) +
            ": want " + std::to_string(out.completions.size()) + " got " +
            std::to_string(record.seq));
      }
      out.completions.push_back(record);
    } else if (type == static_cast<uint8_t>(RecordType::kCancel)) {
      if (!saw_submit || body.size() != 1) {
        return util::Status::Corruption("malformed cancel record");
      }
      out.cancelled = true;
    } else {
      return util::Status::Corruption("unknown record type " +
                                      std::to_string(type));
    }
    pos += kFrameHeaderBytes + length;
    out.valid_bytes = static_cast<int64_t>(pos);
  }
  return out;
}

}  // namespace persist
}  // namespace incentag
