#include "src/persist/journal.h"

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/crc32.h"
#include "src/util/fail_point.h"
#include "src/util/wire.h"

namespace incentag {
namespace persist {

namespace {

using util::wire::PutDouble;
using util::wire::PutI64;
using util::wire::PutString;
using util::wire::PutU32;
using util::wire::PutU64;
using util::wire::PutU8;
using util::wire::Reader;

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

// Dirty-buffer bound for the batched append path: below this a quantum
// coalesces in the writer buffer for the sink's next window flush; at
// or past it the append flushes inline (one gathered pwritev). Sized
// well above a window's worth of records at any realistic rate, so the
// inline path only triggers when no sink is draining the buffer.
constexpr int64_t kGatherFlushBytes = 32 << 10;

// Fault-injection sites for the compaction rewrite (ISSUE 10): the
// fsync of the rewrite and the atomic rename are the two syscalls whose
// failure must leave the old journal fully intact.
INCENTAG_FAIL_POINT_DEFINE(g_fail_compact_rewrite, "compactor/rewrite");
INCENTAG_FAIL_POINT_DEFINE(g_fail_compact_rename, "compactor/rename");

}  // namespace

// ---- record bodies ----------------------------------------------------

std::string EncodeSubmitRecord(const SubmitRecord& record) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(RecordType::kSubmit));
  PutU32(&out, record.format_version);
  PutString(&out, record.name);
  PutString(&out, record.strategy_name);
  PutU64(&out, record.seed);
  PutI64(&out, record.options.budget);
  PutU32(&out, static_cast<uint32_t>(record.options.omega));
  PutI64(&out, record.options.under_tagged_threshold);
  PutI64(&out, record.options.batch_size);
  PutU32(&out, static_cast<uint32_t>(record.options.checkpoints.size()));
  for (int64_t checkpoint : record.options.checkpoints) {
    PutI64(&out, checkpoint);
  }
  // Format v3: the scheduling class. Honor the record's own version —
  // compaction re-encodes a recovered journal's SubmitRecord verbatim,
  // and a v2 record must stay a v2 body (no trailing bytes) or the
  // rewritten journal would no longer decode.
  if (record.format_version >= 3) {
    PutU32(&out, static_cast<uint32_t>(record.options.priority));
    PutDouble(&out, record.options.deadline_seconds);
  }
  return out;
}

std::string EncodeCompletionRecord(const CompletionRecord& record) {
  std::string out;
  EncodeCompletionRecordTo(record, &out);
  return out;
}

void EncodeCompletionRecordTo(const CompletionRecord& record,
                              std::string* out) {
  PutU8(out, static_cast<uint8_t>(RecordType::kCompletion));
  PutU64(out, record.seq);
  PutU32(out, record.resource);
}

std::string EncodeSnapshotRecord(const SnapshotRecord& record) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(RecordType::kSnapshot));
  PutU32(&out, record.format_version);
  PutU64(&out, record.num_completions);
  PutU64(&out, record.next_assign_seq);
  PutU32(&out, static_cast<uint32_t>(record.pending.size()));
  for (core::ResourceId resource : record.pending) {
    PutU32(&out, resource);
  }
  PutString(&out, record.runtime_state);
  return out;
}

util::Status DecodeSubmitRecord(std::string_view body, SubmitRecord* out) {
  Reader in(body);
  uint8_t type;
  if (!in.GetU8(&type) ||
      type != static_cast<uint8_t>(RecordType::kSubmit)) {
    return util::Status::Corruption("not a submit record");
  }
  uint32_t omega = 0;
  uint32_t num_checkpoints = 0;
  if (!in.GetU32(&out->format_version) || !in.GetString(&out->name) ||
      !in.GetString(&out->strategy_name) || !in.GetU64(&out->seed) ||
      !in.GetI64(&out->options.budget) || !in.GetU32(&omega) ||
      !in.GetI64(&out->options.under_tagged_threshold) ||
      !in.GetI64(&out->options.batch_size) || !in.GetU32(&num_checkpoints)) {
    return util::Status::Corruption("short submit record");
  }
  // v1 and v2 submit bodies are identical; v3 appends the scheduling
  // class. Only future majors are unreadable.
  if (out->format_version > kJournalFormatVersion) {
    return util::Status::Corruption(
        "unsupported journal format version " +
        std::to_string(out->format_version));
  }
  out->options.omega = static_cast<int>(omega);
  out->options.checkpoints.clear();
  out->options.checkpoints.reserve(num_checkpoints);
  for (uint32_t i = 0; i < num_checkpoints; ++i) {
    int64_t checkpoint;
    if (!in.GetI64(&checkpoint)) {
      return util::Status::Corruption("short submit record checkpoints");
    }
    out->options.checkpoints.push_back(checkpoint);
  }
  // Pre-scheduler journals (v1/v2) default to the baseline scheduling
  // class: priority 1, no deadline.
  out->options.priority = 1;
  out->options.deadline_seconds = 0.0;
  if (out->format_version >= 3) {
    uint32_t priority = 0;
    if (!in.GetU32(&priority) ||
        !in.GetDouble(&out->options.deadline_seconds)) {
      return util::Status::Corruption("short submit record scheduling class");
    }
    out->options.priority = static_cast<int32_t>(priority);
  }
  if (!in.exhausted()) {
    return util::Status::Corruption("trailing bytes in submit record");
  }
  return util::Status::OK();
}

util::Status DecodeCompletionRecord(std::string_view body,
                                    CompletionRecord* out) {
  Reader in(body);
  uint8_t type;
  if (!in.GetU8(&type) ||
      type != static_cast<uint8_t>(RecordType::kCompletion)) {
    return util::Status::Corruption("not a completion record");
  }
  if (!in.GetU64(&out->seq) || !in.GetU32(&out->resource) ||
      !in.exhausted()) {
    return util::Status::Corruption("malformed completion record");
  }
  return util::Status::OK();
}

util::Status DecodeSnapshotRecord(std::string_view body, SnapshotRecord* out) {
  Reader in(body);
  uint8_t type;
  if (!in.GetU8(&type) ||
      type != static_cast<uint8_t>(RecordType::kSnapshot)) {
    return util::Status::Corruption("not a snapshot record");
  }
  uint32_t num_pending = 0;
  if (!in.GetU32(&out->format_version) ||
      out->format_version > kJournalFormatVersion ||
      !in.GetU64(&out->num_completions) || !in.GetU64(&out->next_assign_seq) ||
      !in.GetU32(&num_pending)) {
    return util::Status::Corruption("malformed snapshot record header");
  }
  if (out->next_assign_seq != out->num_completions + num_pending) {
    return util::Status::Corruption(
        "snapshot record seq accounting is inconsistent");
  }
  out->pending.clear();
  out->pending.reserve(num_pending);
  for (uint32_t i = 0; i < num_pending; ++i) {
    core::ResourceId resource = core::kInvalidResource;
    if (!in.GetU32(&resource)) {
      return util::Status::Corruption("short snapshot record pending set");
    }
    out->pending.push_back(resource);
  }
  if (!in.GetString(&out->runtime_state) || !in.exhausted()) {
    return util::Status::Corruption("malformed snapshot record state");
  }
  return util::Status::OK();
}

std::string FrameRecord(std::string_view body) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  // The CRC covers the length word too, so a bit-flip in the length is
  // detected like any payload damage instead of silently reframing.
  uint32_t crc = util::Crc32(std::string_view(frame.data(), 4));
  crc = util::Crc32(body, crc);
  PutU32(&frame, crc);
  frame.append(body.data(), body.size());
  return frame;
}

namespace {

// Patches a little-endian u32 over already-appended bytes.
void PatchU32(std::string* out, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out)[pos + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
}

}  // namespace

void AppendFramedCompletionRecord(const CompletionRecord& record,
                                  std::string* out) {
  const size_t frame_start = out->size();
  out->append(kFrameHeaderBytes, '\0');  // length + crc, backfilled below
  EncodeCompletionRecordTo(record, out);
  const uint32_t length =
      static_cast<uint32_t>(out->size() - frame_start - kFrameHeaderBytes);
  PatchU32(out, frame_start, length);
  uint32_t crc = util::Crc32(out->data() + frame_start, 4);
  crc = util::Crc32(out->data() + frame_start + kFrameHeaderBytes, length,
                    crc);
  PatchU32(out, frame_start + 4, crc);
}

// ---- writer ------------------------------------------------------------

util::Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, int64_t truncate_to) {
  std::unique_ptr<JournalWriter> writer(new JournalWriter(path));
  util::MutexLock lock(&writer->mu_);
  INCENTAG_RETURN_IF_ERROR(writer->file_.Open(path, truncate_to));
  // Open's preconditions (Submit syncs before sharing the writer;
  // recovery resumes from bytes that survived a crash) make the whole
  // opening size the durable anchor.
  writer->durable_size_ = writer->file_.size();
  return writer;
}

namespace {
obs::Counter* AppendBytesCounter() {
  static obs::Counter* counter = obs::Registry::Default().GetCounter(
      "incentag_persist_append_bytes_total",
      "Framed bytes appended to campaign journals");
  return counter;
}
}  // namespace

util::Status JournalWriter::AppendFramed(std::string_view body) {
  const std::string frame = FrameRecord(body);
  AppendBytesCounter()->Add(static_cast<int64_t>(frame.size()));
  util::MutexLock lock(&mu_);
  return file_.Append(frame);
}

util::Status JournalWriter::AppendSubmit(const SubmitRecord& record) {
  return AppendFramed(EncodeSubmitRecord(record));
}

util::Status JournalWriter::AppendCompletion(const CompletionRecord& record) {
  return AppendFramed(EncodeCompletionRecord(record));
}

util::Status JournalWriter::AppendCompletionBatch(
    const CompletionRecord* records, size_t count) {
  if (count == 0) return util::Status::OK();
  // Reused per thread: each campaign's stepper encodes its quantum here,
  // so steady-state appends touch no allocator at all (the arena keeps
  // its high-water capacity).
  thread_local std::string arena;
  arena.clear();
  for (size_t i = 0; i < count; ++i) {
    AppendFramedCompletionRecord(records[i], &arena);
  }
  AppendBytesCounter()->Add(static_cast<int64_t>(arena.size()));
  // At most one syscall per quantum, usually zero: a small quantum just
  // lands in the writer buffer (memcpy) and rides the next window
  // commit — the sink's SyncData/CollectUnsynced flush the buffer as
  // part of the fsync they already pay for, so steady-state appends
  // cost the workers no kernel crossing at all. A quantum that pushes
  // the dirty tail past kGatherFlushBytes (a sink stalled or absent)
  // flushes inline as one gathered pwritev — the buffer plus the arena
  // in a single syscall, never copying the arena into the buffer. The
  // on-disk bytes are identical either way.
  const std::string_view piece(arena);
  util::MutexLock lock(&mu_);
  if (file_.buffered_bytes() + static_cast<int64_t>(piece.size()) <
      kGatherFlushBytes) {
    return file_.Append(piece);
  }
  return file_.AppendGather({&piece, 1});
}

util::Status JournalWriter::AppendCancel() {
  std::string body;
  PutU8(&body, static_cast<uint8_t>(RecordType::kCancel));
  return AppendFramed(body);
}

util::Status JournalWriter::Flush() {
  util::MutexLock lock(&mu_);
  return file_.Flush();
}

util::Status JournalWriter::Sync() {
  util::MutexLock lock(&mu_);
  INCENTAG_RETURN_IF_ERROR(file_.Sync());
  durable_size_ = file_.size();
  return util::Status::OK();
}

util::Status JournalWriter::SyncData(int64_t* durable_size) {
  util::MutexLock lock(&mu_);
  INCENTAG_RETURN_IF_ERROR(file_.SyncData());
  durable_size_ = file_.size();
  if (durable_size != nullptr) *durable_size = file_.size();
  return util::Status::OK();
}

util::Status JournalWriter::RecoverAfterSyncFailure() {
  util::MutexLock lock(&mu_);
  return file_.ReopenAndRestore(durable_size_);
}

int64_t JournalWriter::buffered_bytes() {
  util::MutexLock lock(&mu_);
  return file_.buffered_bytes();
}

util::Status JournalWriter::CollectUnsynced(int64_t from, std::string* data,
                                            uint32_t* context_crc,
                                            uint8_t* context_len) {
  data->clear();
  *context_crc = 0;
  *context_len = 0;
  util::MutexLock lock(&mu_);
  INCENTAG_RETURN_IF_ERROR(file_.Flush());
  const int64_t size = file_.size();
  if (from < 0 || from > size) {
    return util::Status::OutOfRange(
        "stale durable offset " + std::to_string(from) + " for journal of " +
        std::to_string(size) + " bytes");
  }
  const int64_t ctx = std::min<int64_t>(from, 16);
  if (ctx > 0) {
    std::string context;
    INCENTAG_RETURN_IF_ERROR(file_.ReadAt(from - ctx, ctx, &context));
    *context_crc = util::Crc32(context);
    *context_len = static_cast<uint8_t>(ctx);
  }
  if (from < size) {
    INCENTAG_RETURN_IF_ERROR(file_.ReadAt(from, size - from, data));
  }
  return util::Status::OK();
}

void JournalWriter::set_commit_observer(JournalCommitObserver* observer) {
  util::MutexLock lock(&mu_);
  observer_ = observer;
}

int64_t JournalWriter::size() {
  util::MutexLock lock(&mu_);
  return file_.size();
}

util::Status JournalWriter::Compact(const SubmitRecord& submit,
                                    const SnapshotRecord& snapshot,
                                    int64_t tail_offset) {
  static obs::Histogram* compact_seconds =
      obs::Registry::Default().GetHistogram(
          "incentag_persist_compaction_seconds",
          "Wall time of a journal compaction rewrite",
          obs::LatencyBoundsSeconds());
  static obs::Counter* compactions = obs::Registry::Default().GetCounter(
      "incentag_persist_compactions_total",
      "Completed journal compaction rewrites");
  static obs::Counter* bytes_reclaimed = obs::Registry::Default().GetCounter(
      "incentag_persist_compaction_bytes_reclaimed_total",
      "Journal bytes dropped by compaction (replayed prefix minus "
      "snapshot)");
  obs::TraceSpan span("compact");
  obs::ScopedTimer timer(compact_seconds);
  const std::string tmp_path = path_ + kCompactionTmpSuffix;
  std::string prefix = FrameRecord(EncodeSubmitRecord(submit));
  prefix += FrameRecord(EncodeSnapshotRecord(snapshot));

  util::AppendFile tmp;
  INCENTAG_RETURN_IF_ERROR(tmp.Open(tmp_path, /*truncate_to=*/0));
  INCENTAG_RETURN_IF_ERROR(tmp.Append(prefix));

  // Phase 1, without the writer lock: push everything appended so far to
  // the kernel and copy the bulk of the tail. Appends racing with this
  // copy only extend the file past `flushed`; phase 2 picks them up.
  int64_t flushed = 0;
  {
    util::MutexLock lock(&mu_);
    INCENTAG_RETURN_IF_ERROR(file_.Flush());
    flushed = file_.size();
  }
  if (tail_offset < 0 || tail_offset > flushed) {
    return util::Status::InvalidArgument(
        "compaction tail offset " + std::to_string(tail_offset) +
        " out of range for journal of " + std::to_string(flushed) + " bytes");
  }
  if (tail_offset < flushed) {
    auto bulk =
        util::ReadFileRange(path_, tail_offset, flushed - tail_offset);
    if (!bulk.ok()) return bulk.status();
    INCENTAG_RETURN_IF_ERROR(tmp.Append(bulk.value()));
  }

  // Phase 2, under the writer lock: copy the delta appended during phase
  // 1, make the rewrite durable and swap it in. Appenders stall for one
  // small copy + fsync + rename, not for the bulk copy above.
  util::MutexLock lock(&mu_);
  INCENTAG_RETURN_IF_ERROR(file_.Flush());
  const int64_t final_size = file_.size();
  if (final_size > flushed) {
    auto delta = util::ReadFileRange(path_, flushed, final_size - flushed);
    if (!delta.ok()) return delta.status();
    INCENTAG_RETURN_IF_ERROR(tmp.Append(delta.value()));
  }
  util::FailPoint::Fault fault;
  if (INCENTAG_FAIL_POINT_FIRED(g_fail_compact_rewrite, &fault) &&
      fault.shape == util::FailPoint::Shape::kErrno) {
    errno = fault.err;
    return util::Status::IoError(
        "fsync " + tmp_path + ": " + std::strerror(fault.err), fault.err);
  }
  INCENTAG_RETURN_IF_ERROR(tmp.Sync());
  if (INCENTAG_FAIL_POINT_FIRED(g_fail_compact_rename, &fault) &&
      fault.shape == util::FailPoint::Shape::kErrno) {
    errno = fault.err;
    return util::Status::IoError(
        "rename " + tmp_path + ": " + std::strerror(fault.err), fault.err);
  }
  INCENTAG_RETURN_IF_ERROR(util::RenameFile(tmp_path, path_));
  // The rename must be durable before anyone relies on the dropped
  // prefix being gone; the containing directory carries that entry.
  const size_t slash = path_.find_last_of('/');
  INCENTAG_RETURN_IF_ERROR(util::SyncDir(
      slash == std::string::npos ? "." : path_.substr(0, slash)));
  // Swap the writer onto the rewrite's still-open descriptor — it now
  // backs `path_` — and drop the old one, which points at the replaced
  // file where appends would vanish. Adopting the open fd instead of
  // close-then-reopen leaves no window in which a transient open
  // failure could strand an otherwise healthy writer.
  file_ = std::move(tmp);
  file_.set_path(path_);
  // The rewrite is fully durable (tmp.Sync() above): the durable anchor
  // for any later failed-sync recovery is the whole new file.
  durable_size_ = file_.size();
  // The rewrite replaced the file wholesale: externally-tracked durable
  // offsets refer to the dead incarnation, and the new one is durable to
  // its full size (tmp.Sync() above). Notified under mu_, before any
  // append can land on the new fd, so the fsync domain never observes a
  // half-switched state.
  if (observer_ != nullptr) {
    observer_->OnJournalRewritten(this, file_.size());
  }
  compactions->Increment();
  const int64_t reclaimed =
      tail_offset - static_cast<int64_t>(prefix.size());
  if (reclaimed > 0) bytes_reclaimed->Add(reclaimed);
  span.set_arg(reclaimed);
  return util::Status::OK();
}

// ---- reader ------------------------------------------------------------

util::Result<JournalContents> ReadJournal(const std::string& path) {
  auto data = util::ReadFileToString(path);
  if (!data.ok()) return data.status();
  const std::string& bytes = data.value();

  JournalContents out;
  out.tail_status = util::Status::OK();
  out.snapshot_status = util::Status::OK();
  size_t pos = 0;
  bool& saw_submit = out.has_submit;
  // Next expected completion seq. A decodable snapshot before the first
  // completion re-bases it (the compacted-journal layout); a snapshot
  // that fails to decode leaves the base to the first completion record
  // after it, so the fallback path still sees a contiguous trace.
  uint64_t next_seq = 0;
  bool seq_base_known = true;
  while (pos < bytes.size()) {
    // Frame header. A short header or short payload is a torn tail write:
    // stop and report the bytes up to the previous record as valid.
    if (bytes.size() - pos < kFrameHeaderBytes) {
      out.tail_status = util::Status::Corruption(
          "torn frame header at offset " + std::to_string(pos));
      break;
    }
    Reader header(std::string_view(bytes).substr(pos, kFrameHeaderBytes));
    uint32_t length = 0;
    uint32_t crc = 0;
    header.GetU32(&length);
    header.GetU32(&crc);
    if (bytes.size() - pos - kFrameHeaderBytes < length) {
      out.tail_status = util::Status::Corruption(
          "torn record payload at offset " + std::to_string(pos));
      break;
    }
    const std::string_view body =
        std::string_view(bytes).substr(pos + kFrameHeaderBytes, length);
    uint32_t want_crc =
        util::Crc32(std::string_view(bytes).substr(pos, 4));
    want_crc = util::Crc32(body, want_crc);
    if (want_crc != crc) {
      // A torn append is a *prefix* of a valid record, so a fully
      // present frame with a bad CRC can only be the unsynced garbage at
      // the physical end of the file. The same damage followed by more
      // data is mid-journal bit rot: fsynced records after it would be
      // silently truncated if we called it a tail, so fail loudly.
      if (pos + kFrameHeaderBytes + length == bytes.size()) {
        out.tail_status = util::Status::Corruption(
            "crc mismatch at offset " + std::to_string(pos));
        break;
      }
      return util::Status::Corruption(
          "crc mismatch mid-journal at offset " + std::to_string(pos) +
          " of " + path);
    }

    // An intact frame that fails to decode is not a torn tail — it is
    // structural corruption mid-journal, and recovery must not guess.
    // (Snapshots are the one exception: see below.)
    if (body.empty()) {
      return util::Status::Corruption("empty record at offset " +
                                      std::to_string(pos));
    }
    const auto type = static_cast<uint8_t>(body[0]);
    if (type == static_cast<uint8_t>(RecordType::kSubmit)) {
      if (saw_submit) {
        return util::Status::Corruption("duplicate submit record");
      }
      INCENTAG_RETURN_IF_ERROR(DecodeSubmitRecord(body, &out.submit));
      saw_submit = true;
    } else if (type == static_cast<uint8_t>(RecordType::kCompletion)) {
      if (!saw_submit) {
        return util::Status::Corruption(
            "completion record before submit record");
      }
      if (out.cancelled) {
        return util::Status::Corruption(
            "completion record after cancel record");
      }
      CompletionRecord record;
      INCENTAG_RETURN_IF_ERROR(DecodeCompletionRecord(body, &record));
      if (!seq_base_known) {
        // The base snapshot did not decode; the first completion after
        // it re-anchors the sequence (it is self-describing).
        next_seq = record.seq;
        seq_base_known = true;
      }
      if (record.seq != next_seq) {
        return util::Status::Corruption(
            "completion seq gap at offset " + std::to_string(pos) +
            ": want " + std::to_string(next_seq) + " got " +
            std::to_string(record.seq));
      }
      ++next_seq;
      out.completions.push_back(record);
    } else if (type == static_cast<uint8_t>(RecordType::kCancel)) {
      if (!saw_submit || body.size() != 1) {
        return util::Status::Corruption("malformed cancel record");
      }
      out.cancelled = true;
    } else if (type == static_cast<uint8_t>(RecordType::kSnapshot)) {
      if (!saw_submit) {
        return util::Status::Corruption(
            "snapshot record before submit record");
      }
      SnapshotRecord snapshot;
      util::Status decoded = DecodeSnapshotRecord(body, &snapshot);
      if (!decoded.ok()) {
        // The frame is intact (CRC passed) but the body is opaque — for
        // example a snapshot written by a newer format. Remember the
        // failure instead of refusing the whole journal: recovery falls
        // back to full replay when the completion trace permits it.
        out.snapshot_status = std::move(decoded);
        if (out.completions.empty()) seq_base_known = false;
      } else if (!out.completions.empty() &&
                 snapshot.num_completions != next_seq) {
        // A checkpoint mid-trace must agree with the records around it.
        return util::Status::Corruption(
            "snapshot at offset " + std::to_string(pos) + " claims " +
            std::to_string(snapshot.num_completions) +
            " completions but the journal holds " +
            std::to_string(next_seq));
      } else {
        if (out.completions.empty()) {
          // Compacted layout: the snapshot establishes the seq base.
          next_seq = snapshot.num_completions;
          seq_base_known = true;
        }
        out.snapshot = std::move(snapshot);
        out.has_snapshot = true;
      }
    } else {
      return util::Status::Corruption("unknown record type " +
                                      std::to_string(type));
    }
    pos += kFrameHeaderBytes + length;
    out.valid_bytes = static_cast<int64_t>(pos);
  }
  return out;
}

}  // namespace persist
}  // namespace incentag
