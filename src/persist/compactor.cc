#include "src/persist/compactor.h"

#include <utility>

namespace incentag {
namespace persist {

Compactor::Compactor() : thread_([this] { Loop(); }) {}

Compactor::~Compactor() { Stop(); }

void Compactor::Enqueue(CompactionJob job) {
  {
    util::MutexLock lock(&mu_);
    if (!stop_) {
      queue_.push_back(std::move(job));
      work_cv_.NotifyOne();
      return;
    }
  }
  // Rejected after Stop: report instead of silently dropping. The
  // journal stays valid either way — an uncompacted journal just
  // replays longer.
  if (job.done) {
    job.done(util::Status::FailedPrecondition("compactor is stopped"));
  }
}

void Compactor::Drain() {
  util::MutexLock lock(&mu_);
  while (!queue_.empty() || running_job_) idle_cv_.Wait(&mu_);
}

void Compactor::Stop() {
  {
    util::MutexLock lock(&mu_);
    stop_ = true;
    work_cv_.NotifyAll();
  }
  std::call_once(join_once_, [this] {
    if (thread_.joinable()) thread_.join();
  });
}

int64_t Compactor::compactions() const {
  util::MutexLock lock(&mu_);
  return completed_;
}

void Compactor::Loop() {
  for (;;) {
    CompactionJob job;
    {
      util::MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) work_cv_.Wait(&mu_);
      // Drain the queue even when stopping: Stop promises every job
      // enqueued before it completes (writers are still alive then).
      if (queue_.empty()) break;
      job = std::move(queue_.front());
      queue_.pop_front();
      running_job_ = true;
    }
    util::Status status =
        job.writer->Compact(job.submit, job.snapshot, job.tail_offset);
    if (job.done) job.done(status);
    {
      util::MutexLock lock(&mu_);
      running_job_ = false;
      ++completed_;
      if (queue_.empty()) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace persist
}  // namespace incentag
