#include "src/persist/replay_source.h"

#include <utility>

namespace incentag {
namespace persist {

ReplayCompletionSource::ReplayCompletionSource(
    std::vector<CompletionRecord> trace, TailPolicy tail_policy)
    : trace_(std::move(trace)), tail_policy_(tail_policy) {}

util::Result<std::unique_ptr<ReplayCompletionSource>>
ReplayCompletionSource::Open(const std::string& journal_path,
                             TailPolicy tail_policy) {
  auto contents = ReadJournal(journal_path);
  if (!contents.ok()) return contents.status();
  // Replay re-drives a fresh campaign from seq 0; a compacted journal
  // (format v2) only holds the tail after its snapshot, so the mismatch
  // would otherwise surface later as a baffling "trace mismatch" error.
  if (!contents.value().completions.empty() &&
      contents.value().completions.front().seq != 0) {
    return util::Status::FailedPrecondition(
        "journal " + journal_path +
        " was compacted: its completion trace starts at seq " +
        std::to_string(contents.value().completions.front().seq) +
        "; replay-from-log needs an uncompacted journal");
  }
  return std::make_unique<ReplayCompletionSource>(
      std::move(contents.value().completions), tail_policy);
}

bool ReplayCompletionSource::SubmitTasks(
    const std::vector<service::TaskHandle>& tasks, const CompletionFn& done) {
  std::vector<service::TaskHandle> to_complete;
  bool halted = false;
  {
    util::MutexLock lock(&mu_);
    if (!error_.ok()) return false;
    to_complete.reserve(tasks.size());
    for (const service::TaskHandle& task : tasks) {
      if (next_ < trace_.size()) {
        const CompletionRecord& record = trace_[next_];
        if (record.seq != task.seq || record.resource != task.resource) {
          error_ = util::Status::Corruption(
              "trace mismatch: record " + std::to_string(next_) +
              " expects seq " + std::to_string(record.seq) + "/resource " +
              std::to_string(record.resource) + ", campaign assigned seq " +
              std::to_string(task.seq) + "/resource " +
              std::to_string(task.resource));
          break;
        }
        ++next_;
        to_complete.push_back(task);
      } else if (tail_policy_ == TailPolicy::kCompleteTail) {
        to_complete.push_back(task);
      } else {
        // Trace exhausted under kHaltAtEnd: complete the in-trace prefix
        // of this batch, then report the source closed.
        halted = true;
        break;
      }
    }
  }
  // The callback runs outside the lock: it re-enters the manager (inbox
  // push and possibly a whole inline step). One span for the whole
  // completed prefix — the trace is single-campaign by construction.
  if (!to_complete.empty()) {
    done(std::span<const service::TaskHandle>(to_complete));
  }
  util::MutexLock lock(&mu_);
  return !halted && error_.ok();
}

size_t ReplayCompletionSource::remaining() const {
  util::MutexLock lock(&mu_);
  return trace_.size() - next_;
}

util::Status ReplayCompletionSource::error() const {
  util::MutexLock lock(&mu_);
  return error_;
}

}  // namespace persist
}  // namespace incentag
