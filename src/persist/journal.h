// Per-campaign write-ahead journal: record format, writer and reader.
//
// The paper's campaigns are long-lived — budget drains over days of crowd
// activity — so the service layer journals enough to survive a process
// crash: one SubmitRecord capturing the campaign's deterministic inputs
// (name, strategy, seed, EngineOptions), then one CompletionRecord per
// post task *applied* to the runtime, in application (= assignment) order.
// Because Algorithm 1 is deterministic given those inputs and the
// application order, replaying the journal through the same
// core::CampaignRuntime step protocol reconstructs the exact pre-crash
// state — byte-identical metrics, checkpoints and allocation — after
// which the campaign simply continues live (see
// service::CampaignManager::Recover).
//
// On-disk framing, little-endian, one record after another:
//
//   [u32 payload_len][u32 crc32(payload_len || payload)][payload]
//   payload = [u8 record_type][body]
//
// The CRC covers the length word as well as the payload, so a damaged
// length cannot silently reframe the stream. A crash mid-append tears a
// *prefix* of the final record (or leaves unsynced garbage at the
// physical end of file); the reader treats only such end-of-file damage
// as a benign torn tail, reporting how many bytes were intact so
// recovery truncates and appends from there. Damage *before* the end of
// the data — an intact-looking frame that fails its CRC or decode with
// more records after it — is real corruption and surfaces as an error
// rather than silently truncating fsynced records.
//
// What is deliberately NOT journaled:
//   * datasets (initial posts, references, streams) — shared, read-only,
//     re-attached at recovery by the caller's CampaignFactory;
//   * a CostModel — non-serializable caller state, ditto;
//   * completion payloads — a completed task's post is drawn
//     deterministically from the stream, so (seq, resource) suffices.
#ifndef INCENTAG_PERSIST_JOURNAL_H_
#define INCENTAG_PERSIST_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/allocation.h"
#include "src/core/types.h"
#include "src/util/file_io.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace persist {

// Format 2 added checkpoint snapshots (kSnapshot) and compaction; format
// 3 appends the scheduling class (EngineOptions::priority /
// deadline_seconds) to the SubmitRecord body. Both older formats still
// read fine: v1/v2 journals have no snapshots / no scheduling fields and
// decode with the defaults (priority 1, no deadline).
inline constexpr uint32_t kJournalFormatVersion = 3;

enum class RecordType : uint8_t {
  kSubmit = 1,
  kCompletion = 2,
  // Written when an operator explicitly cancels the campaign (not by the
  // manager's shutdown sweep — a graceful restart must stay resumable).
  // Recovery replays the trace for the partial report, then finalizes
  // kCancelled instead of resuming spend.
  kCancel = 3,
  // Format v2: a checkpoint snapshot of the campaign's full resumable
  // state after `num_completions` applied tasks. Compaction rewrites the
  // journal as submit + snapshot + tail so recovery replays only the
  // completions after the snapshot instead of the whole trace.
  kSnapshot = 4,
};

// The deterministic inputs of one campaign, written once at Submit.
struct SubmitRecord {
  uint32_t format_version = kJournalFormatVersion;
  std::string name;
  std::string strategy_name;
  // Caller-defined seed handed back to the CampaignFactory at recovery
  // (e.g. the FC crowd-model seed); 0 when the strategy is seedless.
  uint64_t seed = 0;
  // EngineOptions minus the CostModel pointer (see header comment).
  core::EngineOptions options;
};

// One applied post task: the `seq`-th assignment completed on `resource`.
struct CompletionRecord {
  uint64_t seq = 0;
  core::ResourceId resource = core::kInvalidResource;
};

// A checkpoint of one campaign's full resumable state (format v2). The
// runtime_state blob is produced by
// core::CampaignRuntime::SerializeResumableState and covers the
// per-resource observable states, evaluation accumulators, allocation,
// checkpoint metrics, stream cursors and the strategy's opaque state —
// doubles bit-exact, so restoring is byte-identical to replaying the
// first num_completions records. pending/next_assign_seq capture the
// service layer's in-flight batch tail (assigned but not yet applied)
// at the moment of the snapshot.
struct SnapshotRecord {
  uint32_t format_version = kJournalFormatVersion;
  // Completions applied when the snapshot was taken; the journal's tail
  // continues with seq == num_completions.
  uint64_t num_completions = 0;
  uint64_t next_assign_seq = 0;
  // Assignment order of drawn-but-unapplied tasks; front corresponds to
  // seq num_completions.
  std::vector<core::ResourceId> pending;
  std::string runtime_state;
};

// Record body encoding (used by the writer; exposed for tests).
std::string EncodeSubmitRecord(const SubmitRecord& record);
std::string EncodeCompletionRecord(const CompletionRecord& record);
// Appends the completion record body to `out` without allocating a
// fresh string — the batched append path encodes a whole quantum of
// records into one reused arena buffer.
void EncodeCompletionRecordTo(const CompletionRecord& record,
                              std::string* out);
std::string EncodeSnapshotRecord(const SnapshotRecord& record);
util::Status DecodeSubmitRecord(std::string_view body, SubmitRecord* out);
util::Status DecodeCompletionRecord(std::string_view body,
                                    CompletionRecord* out);
util::Status DecodeSnapshotRecord(std::string_view body, SnapshotRecord* out);

// Wraps a record body in the on-disk framing ([len][crc][payload]); the
// writer appends these, and tests hand-construct journal files with it.
std::string FrameRecord(std::string_view body);

// Appends one framed completion record to `out` — byte-identical to
// `out += FrameRecord(EncodeCompletionRecord(record))` but with zero
// intermediate allocations: the body is encoded in place after a
// reserved 8-byte header, then the length and CRC are backfilled.
void AppendFramedCompletionRecord(const CompletionRecord& record,
                                  std::string* out);

// Suffix of the temporary file a compaction writes next to the journal
// before the atomic rename. A crash mid-compaction leaves it behind; it
// never matches ListDirFiles(dir, ".journal"), and recovery deletes it.
inline constexpr char kCompactionTmpSuffix[] = ".compact.tmp";

class JournalWriter;

// Observer for events that invalidate externally-tracked durability
// state. The fsync domain (persist::FsyncDomain) registers one per
// writer: a compaction replaces the whole file, so any "bytes durable up
// to offset X" bookkeeping for the old incarnation is void, and the new
// incarnation is fully durable (the rewrite is fsynced before the
// rename). Called with the writer's internal lock held — implementations
// must not call back into the writer.
class JournalCommitObserver {
 public:
  virtual ~JournalCommitObserver() = default;
  virtual void OnJournalRewritten(JournalWriter* writer,
                                  int64_t durable_size) = 0;
};

// Appends framed records to one campaign's journal file. Thread-safe: the
// stepper thread appends while the JournalSink's thread syncs. Appends
// buffer in memory; Flush() makes them crash-of-process durable, Sync()
// makes them power-loss durable (fsync).
class JournalWriter {
 public:
  // Creates (or reopens) `path`. `truncate_to` >= 0 first cuts the file
  // to that many bytes — recovery passes the reader's valid_bytes() to
  // drop a torn tail before resuming appends.
  static util::Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, int64_t truncate_to = -1);

  util::Status AppendSubmit(const SubmitRecord& record) EXCLUDES(mu_);
  util::Status AppendCompletion(const CompletionRecord& record)
      EXCLUDES(mu_);
  // Appends a whole quantum of completion records with one writer-lock
  // acquisition and ONE syscall: the records are framed (one CRC pass
  // each, same on-disk bytes as `count` AppendCompletion calls — v1–v3
  // readers need no format bump) into a thread-reused arena buffer,
  // then the arena plus any already-dirty buffered bytes are handed to
  // the kernel in a single gathered pwritev
  // (util::AppendFile::AppendGather), so steady-state batches allocate
  // nothing and cost exactly one kernel crossing. On error the
  // unwritten remainder stays buffered and the next Flush/Sync writes
  // each byte exactly once.
  util::Status AppendCompletionBatch(const CompletionRecord* records,
                                     size_t count) EXCLUDES(mu_);
  util::Status AppendCancel() EXCLUDES(mu_);

  util::Status Flush() EXCLUDES(mu_);
  util::Status Sync() EXCLUDES(mu_);

  // Flush + fdatasync — the cheap per-fd durability point the fsync
  // domain uses for small commit windows. `*durable_size` (optional)
  // reports the journal size this call made power-loss durable.
  util::Status SyncData(int64_t* durable_size = nullptr) EXCLUDES(mu_);

  // Fsyncgate recovery (ISSUE 10): after a failed Sync/SyncData the
  // page cache behind the fd is untrusted — the kernel may have marked
  // the dirty pages clean without writing them, so blindly re-syncing
  // the same descriptor can report durability for bytes that never
  // landed. This rebuilds the writer on a fresh descriptor truncated to
  // the last offset a *successful* sync covered, with every byte past
  // it restored into the write buffer (util::AppendFile::
  // ReopenAndRestore); the caller then retries the sync, which rewrites
  // exactly the untrusted range. On failure the writer is permanently
  // sick and must be quarantined.
  util::Status RecoverAfterSyncFailure() EXCLUDES(mu_);

  // Bytes appended but not yet handed to the kernel — the dirty tail a
  // retry ladder is still responsible for. The manager caps this while
  // a journal rides out transient append failures.
  int64_t buffered_bytes() EXCLUDES(mu_);

  // Commit-log support (see persist::FsyncDomain): flushes, then reads
  // back the journal bytes in [from, size()) through the writer's own
  // descriptor, plus a CRC of up to the 16 bytes immediately before
  // `from` (`*context_len` of them) that recovery uses to prove a
  // logged patch still matches the file it is about to be applied to.
  // Fails (OutOfRange) when `from` exceeds the current size — the
  // caller's durability bookkeeping went stale (e.g. a compaction
  // landed) and it should fall back to SyncData().
  util::Status CollectUnsynced(int64_t from, std::string* data,
                               uint32_t* context_crc, uint8_t* context_len)
      EXCLUDES(mu_);

  // Registers the observer notified after a successful Compact() swaps
  // the file. Set before the writer is shared across threads; pass
  // nullptr to clear.
  void set_commit_observer(JournalCommitObserver* observer) EXCLUDES(mu_);

  // Logical journal size in bytes (appended, possibly still buffered).
  // A stepper reads this right after taking a snapshot: everything at or
  // beyond the returned offset is the snapshot's tail.
  int64_t size() EXCLUDES(mu_);

  // Atomically rewrites the journal as `submit + snapshot + tail`, where
  // the tail is every byte from `tail_offset` to the end — the
  // completions applied after the snapshot was taken. Safe to run from a
  // background thread while other threads keep appending: the bulk of
  // the tail is copied without the writer lock, and only the final
  // delta-copy + fsync + rename + fd swap hold it. Torn-compaction safe:
  // the rewrite goes to `path + kCompactionTmpSuffix` first, is fsynced,
  // renamed over the journal, and the directory fsynced — a crash leaves
  // either the old journal (plus a stale tmp) or the new one, never a
  // mix.
  util::Status Compact(const SubmitRecord& submit,
                       const SnapshotRecord& snapshot, int64_t tail_offset)
      EXCLUDES(mu_);

  const std::string& path() const { return path_; }

 private:
  explicit JournalWriter(std::string path) : path_(std::move(path)) {}

  util::Status AppendFramed(std::string_view body) EXCLUDES(mu_);

  const std::string path_;
  util::Mutex mu_;
  // The open journal fd + userspace buffer. Stepper threads append while
  // the sink thread fsyncs and the compactor swaps the descriptor, all
  // through this one handle — every touch holds mu_.
  util::AppendFile file_ GUARDED_BY(mu_);
  // Offset the journal *file* is known power-loss durable to (last
  // successful Sync/SyncData, or the full rewrite after a compaction).
  // The anchor RecoverAfterSyncFailure truncates back to — deliberately
  // the file-level offset, not the fsync domain's log-rung bookkeeping:
  // bytes covered only by commit-log patches are not in this file, and
  // re-appending them is idempotent while trusting them would not be.
  int64_t durable_size_ GUARDED_BY(mu_) = 0;
  JournalCommitObserver* observer_ GUARDED_BY(mu_) = nullptr;
};

// Parses a whole journal file. `tail_status` distinguishes a clean end
// from a torn/corrupt tail; records before the tail are always intact.
struct JournalContents {
  SubmitRecord submit;
  // False when the file holds no intact SubmitRecord at all (a crash
  // between journal creation and the submit fsync): nothing recoverable.
  bool has_submit = false;
  // True when the journal records an explicit operator cancellation; no
  // completions may follow it.
  bool cancelled = false;
  // Format v2: the latest decodable snapshot. Recovery restores from it
  // and replays only the completions with seq >= snapshot.num_completions.
  bool has_snapshot = false;
  SnapshotRecord snapshot;
  // OK when every snapshot record in the file decoded. A snapshot whose
  // frame is intact but whose body does not decode (e.g. written by a
  // newer format) is reported here instead of failing the read, so
  // recovery can fall back to full replay when the completion trace
  // still starts at seq 0 — and fail the campaign when it does not.
  util::Status snapshot_status;
  // Completions in seq order. Format v1 (and uncompacted v2) journals
  // start at seq 0; a compacted journal's trace starts at the seq the
  // snapshot base established. Contiguous either way.
  std::vector<CompletionRecord> completions;
  // Bytes of the file occupied by intact records; pass to
  // JournalWriter::Open(truncate_to) when resuming the journal.
  int64_t valid_bytes = 0;
  // OK when the file ended exactly on a record boundary; kCorruption when
  // a torn or bit-flipped tail was dropped (valid_bytes excludes it).
  util::Status tail_status;
};

// Reads and validates `path`. A torn/corrupt *tail* degrades gracefully
// (tail_status, valid_bytes); structural damage before the tail — an
// intact frame that fails to decode, a completion before the submit, a
// seq gap — fails, because recovery must not guess past it.
util::Result<JournalContents> ReadJournal(const std::string& path);

}  // namespace persist
}  // namespace incentag

#endif  // INCENTAG_PERSIST_JOURNAL_H_
