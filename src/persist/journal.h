// Per-campaign write-ahead journal: record format, writer and reader.
//
// The paper's campaigns are long-lived — budget drains over days of crowd
// activity — so the service layer journals enough to survive a process
// crash: one SubmitRecord capturing the campaign's deterministic inputs
// (name, strategy, seed, EngineOptions), then one CompletionRecord per
// post task *applied* to the runtime, in application (= assignment) order.
// Because Algorithm 1 is deterministic given those inputs and the
// application order, replaying the journal through the same
// core::CampaignRuntime step protocol reconstructs the exact pre-crash
// state — byte-identical metrics, checkpoints and allocation — after
// which the campaign simply continues live (see
// service::CampaignManager::Recover).
//
// On-disk framing, little-endian, one record after another:
//
//   [u32 payload_len][u32 crc32(payload_len || payload)][payload]
//   payload = [u8 record_type][body]
//
// The CRC covers the length word as well as the payload, so a damaged
// length cannot silently reframe the stream. A crash mid-append tears a
// *prefix* of the final record (or leaves unsynced garbage at the
// physical end of file); the reader treats only such end-of-file damage
// as a benign torn tail, reporting how many bytes were intact so
// recovery truncates and appends from there. Damage *before* the end of
// the data — an intact-looking frame that fails its CRC or decode with
// more records after it — is real corruption and surfaces as an error
// rather than silently truncating fsynced records.
//
// What is deliberately NOT journaled:
//   * datasets (initial posts, references, streams) — shared, read-only,
//     re-attached at recovery by the caller's CampaignFactory;
//   * a CostModel — non-serializable caller state, ditto;
//   * completion payloads — a completed task's post is drawn
//     deterministically from the stream, so (seq, resource) suffices.
#ifndef INCENTAG_PERSIST_JOURNAL_H_
#define INCENTAG_PERSIST_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/allocation.h"
#include "src/core/types.h"
#include "src/util/file_io.h"
#include "src/util/status.h"

namespace incentag {
namespace persist {

// Bumped when the framing or record bodies change incompatibly.
inline constexpr uint32_t kJournalFormatVersion = 1;

enum class RecordType : uint8_t {
  kSubmit = 1,
  kCompletion = 2,
  // Written when an operator explicitly cancels the campaign (not by the
  // manager's shutdown sweep — a graceful restart must stay resumable).
  // Recovery replays the trace for the partial report, then finalizes
  // kCancelled instead of resuming spend.
  kCancel = 3,
};

// The deterministic inputs of one campaign, written once at Submit.
struct SubmitRecord {
  uint32_t format_version = kJournalFormatVersion;
  std::string name;
  std::string strategy_name;
  // Caller-defined seed handed back to the CampaignFactory at recovery
  // (e.g. the FC crowd-model seed); 0 when the strategy is seedless.
  uint64_t seed = 0;
  // EngineOptions minus the CostModel pointer (see header comment).
  core::EngineOptions options;
};

// One applied post task: the `seq`-th assignment completed on `resource`.
struct CompletionRecord {
  uint64_t seq = 0;
  core::ResourceId resource = core::kInvalidResource;
};

// Record body encoding (used by the writer; exposed for tests).
std::string EncodeSubmitRecord(const SubmitRecord& record);
std::string EncodeCompletionRecord(const CompletionRecord& record);
util::Status DecodeSubmitRecord(std::string_view body, SubmitRecord* out);
util::Status DecodeCompletionRecord(std::string_view body,
                                    CompletionRecord* out);

// Appends framed records to one campaign's journal file. Thread-safe: the
// stepper thread appends while the JournalSink's thread syncs. Appends
// buffer in memory; Flush() makes them crash-of-process durable, Sync()
// makes them power-loss durable (fsync).
class JournalWriter {
 public:
  // Creates (or reopens) `path`. `truncate_to` >= 0 first cuts the file
  // to that many bytes — recovery passes the reader's valid_bytes() to
  // drop a torn tail before resuming appends.
  static util::Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, int64_t truncate_to = -1);

  util::Status AppendSubmit(const SubmitRecord& record);
  util::Status AppendCompletion(const CompletionRecord& record);
  util::Status AppendCancel();

  util::Status Flush();
  util::Status Sync();

  const std::string& path() const { return path_; }

 private:
  explicit JournalWriter(std::string path) : path_(std::move(path)) {}

  util::Status AppendFramed(std::string_view body);

  const std::string path_;
  std::mutex mu_;
  util::AppendFile file_;
};

// Parses a whole journal file. `tail_status` distinguishes a clean end
// from a torn/corrupt tail; records before the tail are always intact.
struct JournalContents {
  SubmitRecord submit;
  // False when the file holds no intact SubmitRecord at all (a crash
  // between journal creation and the submit fsync): nothing recoverable.
  bool has_submit = false;
  // True when the journal records an explicit operator cancellation; no
  // completions may follow it.
  bool cancelled = false;
  std::vector<CompletionRecord> completions;
  // Bytes of the file occupied by intact records; pass to
  // JournalWriter::Open(truncate_to) when resuming the journal.
  int64_t valid_bytes = 0;
  // OK when the file ended exactly on a record boundary; kCorruption when
  // a torn or bit-flipped tail was dropped (valid_bytes excludes it).
  util::Status tail_status;
};

// Reads and validates `path`. A torn/corrupt *tail* degrades gracefully
// (tail_status, valid_bytes); structural damage before the tail — an
// intact frame that fails to decode, a completion before the submit, a
// seq gap — fails, because recovery must not guess past it.
util::Result<JournalContents> ReadJournal(const std::string& path);

}  // namespace persist
}  // namespace incentag

#endif  // INCENTAG_PERSIST_JOURNAL_H_
