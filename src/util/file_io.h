// Durable-file primitives for the persist layer.
//
// AppendFile is the write side of a write-ahead journal: a positioned
// writer (pwrite/pwritev at explicit offsets, no fd seek state) with an
// explicit three-stage durability ladder — Append (buffer in memory) ->
// Flush (write to the kernel) -> Sync/SyncData (fsync/fdatasync to the
// platter). AppendGather is the one-syscall fast path: it hands a span
// of new pieces plus any already-dirty buffered bytes to the kernel in a
// single pwritev (ISSUE 9). The persist::JournalSink batches the
// expensive third stage across campaigns; everything here is synchronous
// and thread-compatible (callers serialise access, see
// persist::JournalWriter for the locked wrapper).
//
// When the io_uring backend is compiled in (INCENTAG_IO_URING=ON) and
// the kernel supports it, SyncData submits its flush + fdatasync as one
// linked SQE chain — a single kernel crossing instead of two — and
// falls back to the POSIX path transparently otherwise (src/util/
// io_uring.h).
//
// All functions return util::Status instead of throwing; errno is folded
// into the message.
#ifndef INCENTAG_UTIL_FILE_IO_H_
#define INCENTAG_UTIL_FILE_IO_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace incentag {
namespace util {

// Creates `dir` and any missing parents. OK if it already exists.
Status CreateDirectories(const std::string& dir);

// Regular files directly inside `dir` whose names end with `suffix`
// (empty suffix = all), as full paths, sorted lexicographically so
// directory scans are deterministic across platforms.
Result<std::vector<std::string>> ListDirFiles(const std::string& dir,
                                              std::string_view suffix = "");

// Whole-file read; the journal reader works from an in-memory image
// (journals are bounded by campaign budgets, not log retention).
Result<std::string> ReadFileToString(const std::string& path);

// Reads exactly `length` bytes starting at `offset`. Fails (OutOfRange)
// when the file is shorter — the compactor uses this to copy a journal
// tail whose extent it computed under the writer lock, so a short read
// means a logic error, not a benign race.
Result<std::string> ReadFileRange(const std::string& path, int64_t offset,
                                  int64_t length);

// Deletes `path`. OK if it does not exist.
Status RemoveFile(const std::string& path);

// Atomically renames `from` over `to` (POSIX rename: `to` is replaced).
// Durability of the swap additionally needs SyncDir on the directory.
Status RenameFile(const std::string& from, const std::string& to);

// fsyncs the directory itself, making creations/removals of entries in
// it power-loss durable — an fsync of a newly created file covers its
// data, not its directory entry.
Status SyncDir(const std::string& dir);

// Byte-positioned appender. Open() creates the file when missing; when
// `truncate_to` >= 0 the file is first truncated to that many bytes —
// recovery uses this to drop a torn tail record before resuming appends.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();  // closes without syncing; call Sync() first if you care

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  // Movable: the target closes its own file (best effort) and adopts the
  // source's descriptor. The journal compactor uses this to swap a
  // writer onto the already-open rewrite after rename(), so there is no
  // close-then-reopen window in which a transient failure could strand
  // the writer.
  AppendFile(AppendFile&& other) noexcept { *this = std::move(other); }
  AppendFile& operator=(AppendFile&& other) noexcept;

  Status Open(const std::string& path, int64_t truncate_to = -1);

  // Buffers `data` in memory; cheap, no syscall.
  Status Append(std::string_view data);

  // Gathered append + flush: logically appends every piece, then hands
  // the dirty buffer and the pieces to the kernel in a single pwritev —
  // the on-disk bytes are identical to Append(piece)... + Flush(), but
  // the common case (clean buffer, one piece) is exactly one syscall and
  // the pieces are never copied into the buffer. On success the buffer
  // is empty. On error the unwritten remainder (buffered bytes included)
  // is retained in the buffer, so a later Flush/Sync retry writes every
  // byte exactly once; size() counts the pieces either way.
  Status AppendGather(std::span<const std::string_view> pieces);

  // Pushes the buffer to the kernel with pwrite. Data survives a process
  // crash after Flush, but not a power loss — that needs Sync/SyncData.
  Status Flush();

  // Flush + fsync: data and all metadata are durable when this returns
  // OK.
  Status Sync();

  // Flush + fdatasync: data (and the metadata needed to read it back,
  // i.e. the file size) is durable when this returns OK — the cheap
  // durability point for append-only journals, which never care about
  // timestamps. With io_uring enabled the flush and the fdatasync are
  // one linked submission.
  Status SyncData();

  // pread of `length` bytes at `offset` through this handle's
  // descriptor — not the path, which a concurrent rename may have
  // re-pointed. Fails (OutOfRange) when the file is shorter; callers
  // read extents they computed from size() after a Flush.
  Status ReadAt(int64_t offset, int64_t length, std::string* out) const;

  // Recovery after a failed fsync/fdatasync (ISSUE 10). A failed sync
  // poisons the page cache: the kernel may mark the dirty pages clean
  // without having written them, so re-syncing the same fd silently
  // drops data (the fsyncgate failure mode). This routine rebuilds the
  // writer on a fresh descriptor: it reads the flushed-but-unsynced
  // range [durable_offset, write_offset) back through the old fd while
  // the pages are still cache-resident, closes the fd raw (no flush
  // through the untrusted descriptor), reopens the path truncated to
  // `durable_offset`, and restores the read-back bytes plus the old
  // buffer as the new dirty buffer. size() is unchanged; the next
  // Flush/Sync rewrites exactly the untrusted range. On failure the
  // file is closed and the writer is unusable — the caller escalates.
  Status ReopenAndRestore(int64_t durable_offset);

  Status Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  // Renames the path used in error messages — for callers that moved a
  // descriptor whose file was just rename()d (see the move contract
  // above); it does not touch the filesystem.
  void set_path(std::string path) { path_ = std::move(path); }
  // Bytes accepted so far (buffered + written), i.e. the logical size.
  int64_t size() const { return size_; }
  // Bytes accepted but not yet handed to the kernel — the dirty tail a
  // Flush/AppendGather/Sync would write. Callers batching syscalls (the
  // journal's quantum path) use this to decide when the buffer is worth
  // a gathered write of its own.
  int64_t buffered_bytes() const {
    return static_cast<int64_t>(buffer_.size());
  }

 private:
  // Bytes already written to the kernel; the next write lands here.
  int64_t write_offset() const {
    return size_ - static_cast<int64_t>(buffer_.size());
  }

  int fd_ = -1;
  std::string path_;
  std::string buffer_;
  int64_t size_ = 0;
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_FILE_IO_H_
