// Durable-file primitives for the persist layer.
//
// AppendFile is the write side of a write-ahead journal: an O_APPEND-free
// positioned writer with an explicit three-stage durability ladder —
// Append (buffer in memory) -> Flush (write() to the kernel) -> Sync
// (fsync to the platter). The persist::JournalSink batches the expensive
// third stage across campaigns; everything here is synchronous and
// thread-compatible (callers serialise access, see persist::JournalWriter
// for the locked wrapper).
//
// All functions return util::Status instead of throwing; errno is folded
// into the message.
#ifndef INCENTAG_UTIL_FILE_IO_H_
#define INCENTAG_UTIL_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace incentag {
namespace util {

// Creates `dir` and any missing parents. OK if it already exists.
Status CreateDirectories(const std::string& dir);

// Regular files directly inside `dir` whose names end with `suffix`
// (empty suffix = all), as full paths, sorted lexicographically so
// directory scans are deterministic across platforms.
Result<std::vector<std::string>> ListDirFiles(const std::string& dir,
                                              std::string_view suffix = "");

// Whole-file read; the journal reader works from an in-memory image
// (journals are bounded by campaign budgets, not log retention).
Result<std::string> ReadFileToString(const std::string& path);

// Reads exactly `length` bytes starting at `offset`. Fails (OutOfRange)
// when the file is shorter — the compactor uses this to copy a journal
// tail whose extent it computed under the writer lock, so a short read
// means a logic error, not a benign race.
Result<std::string> ReadFileRange(const std::string& path, int64_t offset,
                                  int64_t length);

// Deletes `path`. OK if it does not exist.
Status RemoveFile(const std::string& path);

// Atomically renames `from` over `to` (POSIX rename: `to` is replaced).
// Durability of the swap additionally needs SyncDir on the directory.
Status RenameFile(const std::string& from, const std::string& to);

// fsyncs the directory itself, making creations/removals of entries in
// it power-loss durable — an fsync of a newly created file covers its
// data, not its directory entry.
Status SyncDir(const std::string& dir);

// Byte-positioned appender. Open() creates the file when missing; when
// `truncate_to` >= 0 the file is first truncated to that many bytes —
// recovery uses this to drop a torn tail record before resuming appends.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();  // closes without syncing; call Sync() first if you care

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  // Movable: the target closes its own file (best effort) and adopts the
  // source's descriptor. The journal compactor uses this to swap a
  // writer onto the already-open rewrite after rename(), so there is no
  // close-then-reopen window in which a transient failure could strand
  // the writer.
  AppendFile(AppendFile&& other) noexcept { *this = std::move(other); }
  AppendFile& operator=(AppendFile&& other) noexcept;

  Status Open(const std::string& path, int64_t truncate_to = -1);

  // Buffers `data` in memory; cheap, no syscall.
  Status Append(std::string_view data);

  // Pushes the buffer to the kernel with write(). Data survives a process
  // crash after Flush, but not a power loss — that needs Sync.
  Status Flush();

  // Flush + fsync: data is durable when this returns OK.
  Status Sync();

  Status Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  // Renames the path used in error messages — for callers that moved a
  // descriptor whose file was just rename()d (see the move contract
  // above); it does not touch the filesystem.
  void set_path(std::string path) { path_ = std::move(path); }
  // Bytes accepted so far (buffered + written), i.e. the logical size.
  int64_t size() const { return size_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::string buffer_;
  int64_t size_ = 0;
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_FILE_IO_H_
