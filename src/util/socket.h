// Thin RAII wrappers over POSIX TCP sockets for the HTTP edge.
//
// Status-based (no exceptions), EINTR-safe, and deliberately blocking:
// the HTTP server is thread-per-connection over util::ThreadPool, so
// per-socket receive timeouts — not readiness multiplexing — bound how
// long a connection can hold a worker. AcceptWithTimeout polls so the
// accept loop can observe a stop flag without relying on the
// close-wakes-accept behavior, which POSIX does not guarantee.
#ifndef INCENTAG_UTIL_SOCKET_H_
#define INCENTAG_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace incentag {
namespace util {

// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Reads up to `capacity` bytes. Returns the count read; 0 means the
  // peer closed cleanly. kDeadlineExceeded when the receive timeout set
  // by SetRecvTimeout expires first.
  Result<size_t> ReadSome(char* buf, size_t capacity);

  // Writes all of `data`, looping over short writes.
  Status WriteAll(std::string_view data);

  // Bounds every subsequent ReadSome. 0 disables the timeout.
  Status SetRecvTimeout(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
};

// A listening TCP socket. Move-only; closes on destruction.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }

  ListenSocket(ListenSocket&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
    other.port_ = 0;
  }
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  // Binds `host:port` (IPv4, SO_REUSEADDR) and listens. Port 0 picks an
  // ephemeral port; port() reports the bound one either way.
  Status Listen(const std::string& host, uint16_t port, int backlog = 128);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  // Waits up to `timeout_ms` for a connection. kDeadlineExceeded on
  // timeout — the server's accept loop uses that to poll its stop flag.
  Result<Socket> AcceptWithTimeout(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Connects to `host:port` (IPv4 literal or "localhost").
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_SOCKET_H_
