#include "src/util/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace incentag {
namespace util {

namespace fs = std::filesystem;

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IoError(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Status CreateDirectories(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("create_directories " + dir + ": " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirFiles(const std::string& dir,
                                              std::string_view suffix) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("opendir " + dir + ": " + ec.message());
  }
  std::vector<std::string> out;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    std::string path = entry.path().string();
    if (!suffix.empty()) {
      if (path.size() < suffix.size() ||
          path.compare(path.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
    }
    out.push_back(std::move(path));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("open " + path + " for read failed");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read " + path + " failed");
  }
  return std::move(contents).str();
}

Result<std::string> ReadFileRange(const std::string& path, int64_t offset,
                                  int64_t length) {
  if (offset < 0 || length < 0) {
    return Status::InvalidArgument("negative file range");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  std::string out;
  out.resize(static_cast<size_t>(length));
  size_t have = 0;
  while (have < out.size()) {
    const ssize_t n =
        ::pread(fd, out.data() + have, out.size() - have,
                static_cast<off_t>(offset + static_cast<int64_t>(have)));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoStatus("pread", path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      ::close(fd);
      return Status::OutOfRange(
          "short read at offset " +
          std::to_string(offset + static_cast<int64_t>(have)) + " of " +
          path);
    }
    have += static_cast<size_t>(n);
  }
  ::close(fd);
  return out;
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IoError("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", dir);
  Status status;
  if (::fsync(fd) != 0) status = ErrnoStatus("fsync", dir);
  ::close(fd);
  return status;
}

AppendFile::~AppendFile() { Close(); }

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();  // best effort; an unsynced buffer was the caller's choice
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    buffer_ = std::move(other.buffer_);
    size_ = other.size_;
    other.fd_ = -1;
    other.path_.clear();
    other.buffer_.clear();
    other.size_ = 0;
  }
  return *this;
}

Status AppendFile::Open(const std::string& path, int64_t truncate_to) {
  if (is_open()) return Status::FailedPrecondition("AppendFile already open");
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return ErrnoStatus("open", path);
  path_ = path;
  if (truncate_to >= 0) {
    if (::ftruncate(fd_, static_cast<off_t>(truncate_to)) != 0) {
      Status status = ErrnoStatus("ftruncate", path);
      Close();
      return status;
    }
    size_ = truncate_to;
  } else {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      Status status = ErrnoStatus("lseek", path);
      Close();
      return status;
    }
    size_ = static_cast<int64_t>(end);
  }
  if (::lseek(fd_, static_cast<off_t>(size_), SEEK_SET) < 0) {
    Status status = ErrnoStatus("lseek", path);
    Close();
    return status;
  }
  return Status::OK();
}

Status AppendFile::Append(std::string_view data) {
  if (!is_open()) return Status::FailedPrecondition("AppendFile not open");
  buffer_.append(data.data(), data.size());
  size_ += static_cast<int64_t>(data.size());
  return Status::OK();
}

Status AppendFile::Flush() {
  if (!is_open()) return Status::FailedPrecondition("AppendFile not open");
  size_t written = 0;
  while (written < buffer_.size()) {
    const ssize_t n =
        ::write(fd_, buffer_.data() + written, buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Drop the part that did reach the kernel so a retry cannot write
      // those bytes twice (which would corrupt a journal).
      buffer_.erase(0, written);
      return ErrnoStatus("write", path_);
    }
    written += static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::OK();
}

Status AppendFile::Sync() {
  INCENTAG_RETURN_IF_ERROR(Flush());
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

Status AppendFile::Close() {
  if (!is_open()) return Status::OK();
  Status status = Flush();
  if (::close(fd_) != 0 && status.ok()) {
    status = ErrnoStatus("close", path_);
  }
  fd_ = -1;
  return status;
}

}  // namespace util
}  // namespace incentag
