#include "src/util/file_io.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/fail_point.h"
#include "src/util/io_uring.h"

namespace incentag {
namespace util {

namespace fs = std::filesystem;

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  const int err = errno;
  return Status::IoError(op + " " + path + ": " + std::strerror(err), err);
}

// Fault-injection sites for the whole append-file surface (ISSUE 10).
// One point per syscall kind; the persist and service layers above are
// hardened against exactly the failures these can synthesize.
INCENTAG_FAIL_POINT_DEFINE(g_fail_open, "file_io/open");
INCENTAG_FAIL_POINT_DEFINE(g_fail_pwritev, "file_io/pwritev");
INCENTAG_FAIL_POINT_DEFINE(g_fail_fsync, "file_io/fsync");
INCENTAG_FAIL_POINT_DEFINE(g_fail_fdatasync, "file_io/fdatasync");

// Evaluates a sync-shaped fail point: kErrno skips the syscall and
// fails; kTornSync really syncs first (the data is durable) and then
// reports failure anyway — the shape fsyncgate hardening must survive.
// Returns true when the site should report failure with errno set.
bool SyncFaultFired(FailPoint& point, int fd, bool data_only) {
  FailPoint::Fault fault;
  if (!INCENTAG_FAIL_POINT_FIRED(point, &fault)) return false;
  if (fault.shape == FailPoint::Shape::kShortWrite) return false;
  if (fault.shape == FailPoint::Shape::kTornSync) {
    if (data_only) {
      ::fdatasync(fd);
    } else {
      ::fsync(fd);
    }
  }
  errno = fault.err;
  return true;
}

}  // namespace

Status CreateDirectories(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("create_directories " + dir + ": " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirFiles(const std::string& dir,
                                              std::string_view suffix) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("opendir " + dir + ": " + ec.message());
  }
  std::vector<std::string> out;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    std::string path = entry.path().string();
    if (!suffix.empty()) {
      if (path.size() < suffix.size() ||
          path.compare(path.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
    }
    out.push_back(std::move(path));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("open " + path + " for read failed");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read " + path + " failed");
  }
  return std::move(contents).str();
}

Result<std::string> ReadFileRange(const std::string& path, int64_t offset,
                                  int64_t length) {
  if (offset < 0 || length < 0) {
    return Status::InvalidArgument("negative file range");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  std::string out;
  out.resize(static_cast<size_t>(length));
  size_t have = 0;
  while (have < out.size()) {
    const ssize_t n =
        ::pread(fd, out.data() + have, out.size() - have,
                static_cast<off_t>(offset + static_cast<int64_t>(have)));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoStatus("pread", path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      ::close(fd);
      return Status::OutOfRange(
          "short read at offset " +
          std::to_string(offset + static_cast<int64_t>(have)) + " of " +
          path);
    }
    have += static_cast<size_t>(n);
  }
  ::close(fd);
  return out;
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IoError("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", dir);
  Status status;
  if (::fsync(fd) != 0) status = ErrnoStatus("fsync", dir);
  ::close(fd);
  return status;
}

AppendFile::~AppendFile() { Close(); }

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();  // best effort; an unsynced buffer was the caller's choice
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    buffer_ = std::move(other.buffer_);
    size_ = other.size_;
    other.fd_ = -1;
    other.path_.clear();
    other.buffer_.clear();
    other.size_ = 0;
  }
  return *this;
}

Status AppendFile::Open(const std::string& path, int64_t truncate_to) {
  if (is_open()) return Status::FailedPrecondition("AppendFile already open");
  FailPoint::Fault fault;
  if (INCENTAG_FAIL_POINT_FIRED(g_fail_open, &fault) &&
      fault.shape == FailPoint::Shape::kErrno) {
    errno = fault.err;
    return ErrnoStatus("open", path);
  }
  // O_RDWR, not O_WRONLY: ReadAt() serves the commit-log rung's
  // CollectUnsynced through this same descriptor (pread needs read
  // permission on the fd).
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return ErrnoStatus("open", path);
  path_ = path;
  if (truncate_to >= 0) {
    if (::ftruncate(fd_, static_cast<off_t>(truncate_to)) != 0) {
      Status status = ErrnoStatus("ftruncate", path);
      Close();
      return status;
    }
    size_ = truncate_to;
  } else {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      Status status = ErrnoStatus("lseek", path);
      Close();
      return status;
    }
    size_ = static_cast<int64_t>(end);
  }
  // All writes are positioned (pwritev at write_offset()), so the fd's
  // own position is never consulted again.
  return Status::OK();
}

Status AppendFile::Append(std::string_view data) {
  if (!is_open()) return Status::FailedPrecondition("AppendFile not open");
  buffer_.append(data.data(), data.size());
  size_ += static_cast<int64_t>(data.size());
  return Status::OK();
}

Status AppendFile::AppendGather(std::span<const std::string_view> pieces) {
  if (!is_open()) return Status::FailedPrecondition("AppendFile not open");
  // The pieces are logically accepted up front, like Append: size()
  // counts them even if the write below fails part-way, because the
  // unwritten remainder is retained in the buffer and the next
  // Flush/Sync writes each byte exactly once.
  const int64_t start = write_offset();
  int64_t added = 0;
  for (std::string_view piece : pieces) {
    added += static_cast<int64_t>(piece.size());
  }
  size_ += added;
  const size_t total = buffer_.size() + static_cast<size_t>(added);
  if (total == 0) return Status::OK();

  // Gather list: the dirty buffer rides in front of the new pieces, so
  // everything reaches the kernel in one pwritev in the common case.
  constexpr size_t kInlineIov = 8;
  struct iovec inline_iov[kInlineIov];
  std::vector<struct iovec> heap_iov;
  struct iovec* iov = inline_iov;
  if (pieces.size() + 1 > kInlineIov) {
    heap_iov.resize(pieces.size() + 1);
    iov = heap_iov.data();
  }
  int iov_count = 0;
  if (!buffer_.empty()) {
    iov[iov_count++] = {buffer_.data(), buffer_.size()};
  }
  for (std::string_view piece : pieces) {
    if (piece.empty()) continue;
    iov[iov_count++] = {const_cast<char*>(piece.data()), piece.size()};
  }

  size_t written = 0;
  int first = 0;  // first gather entry with unwritten bytes
  while (written < total) {
    struct iovec* window = iov + first;
    int count = iov_count - first;
    FailPoint::Fault fault;
    const bool injected = INCENTAG_FAIL_POINT_FIRED(g_fail_pwritev, &fault);
    // A short-write fault trims the window so one syscall moves at most
    // the armed cap, forcing the resume arithmetic real kernels only
    // exercise under memory pressure or signals.
    struct iovec capped[kInlineIov];
    if (injected && fault.shape == FailPoint::Shape::kShortWrite &&
        fault.max_bytes > 0) {
      size_t budget = static_cast<size_t>(fault.max_bytes);
      int kept = 0;
      while (kept < count && kept < static_cast<int>(kInlineIov) &&
             budget > 0) {
        capped[kept] = window[kept];
        if (capped[kept].iov_len > budget) capped[kept].iov_len = budget;
        budget -= capped[kept].iov_len;
        ++kept;
      }
      window = capped;
      count = kept;
    }
    if (count > IOV_MAX) count = IOV_MAX;
    ssize_t n;
    if (injected && fault.shape == FailPoint::Shape::kErrno) {
      // Injected failures bypass the EINTR-absorb below on purpose: an
      // armed EINTR must surface to the caller, not retry inline.
      errno = fault.err;
      n = -1;
    } else {
      n = ::pwritev(fd_, window, count, static_cast<off_t>(start + written));
      if (n < 0 && errno == EINTR) continue;
    }
    if (n <= 0) {
      Status status = n < 0 ? ErrnoStatus("pwritev", path_)
                            : Status::IoError("pwritev wrote nothing to " +
                                              path_);
      // Retain exactly the unwritten remainder (buffered bytes and piece
      // tails alike) so a retry cannot write any byte twice — the iov
      // entries already point past what reached the kernel.
      std::string remainder;
      remainder.reserve(total - written);
      for (int i = first; i < iov_count; ++i) {
        remainder.append(static_cast<const char*>(iov[i].iov_base),
                         iov[i].iov_len);
      }
      buffer_ = std::move(remainder);
      return status;
    }
    written += static_cast<size_t>(n);
    size_t advance = static_cast<size_t>(n);
    while (advance > 0) {
      if (advance >= iov[first].iov_len) {
        advance -= iov[first].iov_len;
        ++first;
      } else {
        iov[first].iov_base =
            static_cast<char*>(iov[first].iov_base) + advance;
        iov[first].iov_len -= advance;
        advance = 0;
      }
    }
  }
  buffer_.clear();
  return Status::OK();
}

Status AppendFile::Flush() {
  // A flush is a gather of zero new pieces: write the dirty buffer (if
  // any) at its position, with the same partial-write bookkeeping.
  return AppendGather({});
}

Status AppendFile::Sync() {
  INCENTAG_RETURN_IF_ERROR(Flush());
  if (SyncFaultFired(g_fail_fsync, fd_, /*data_only=*/false)) {
    return ErrnoStatus("fsync", path_);
  }
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

Status AppendFile::SyncData() {
  if (!is_open()) return Status::FailedPrecondition("AppendFile not open");
  // Any armed write/sync fault forces the POSIX ladder: the ring's
  // linked submission cannot model a short write or a torn sync, and
  // the hardened paths above must see the same failure shapes either
  // way.
  if (IoUringEnabled() && !INCENTAG_FAIL_POINT_ARMED(g_fail_pwritev) &&
      !INCENTAG_FAIL_POINT_ARMED(g_fail_fdatasync)) {
    // One linked WRITEV -> FDATASYNC submission: the flush and the
    // durability point cost a single kernel crossing. Anything the ring
    // could not finish (short write, cancelled sync, kernel refusing the
    // opcodes) falls through to the POSIX ladder below, which resumes
    // from the exact byte the ring reached.
    struct iovec iov;
    int iovcnt = 0;
    if (!buffer_.empty()) {
      iov = {buffer_.data(), buffer_.size()};
      iovcnt = 1;
    }
    size_t written = 0;
    bool synced = false;
    Status status = IoUringWriteAndSync(fd_, iovcnt > 0 ? &iov : nullptr,
                                        iovcnt, write_offset(), &written,
                                        &synced);
    buffer_.erase(0, written);
    // A mid-flight ring failure is the one case with unknowable write
    // extent; surfacing it (instead of re-flushing bytes that may have
    // landed) keeps the no-byte-written-twice invariant.
    if (!status.ok()) return status;
    if (synced && buffer_.empty()) return Status::OK();
  }
  INCENTAG_RETURN_IF_ERROR(Flush());
  if (SyncFaultFired(g_fail_fdatasync, fd_, /*data_only=*/true)) {
    return ErrnoStatus("fdatasync", path_);
  }
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
  return Status::OK();
}

Status AppendFile::ReopenAndRestore(int64_t durable_offset) {
  if (!is_open()) return Status::FailedPrecondition("AppendFile not open");
  if (durable_offset < 0 || durable_offset > write_offset()) {
    return Status::InvalidArgument(
        "durable offset " + std::to_string(durable_offset) +
        " outside flushed range of " + path_);
  }
  // Read the flushed-but-unsynced range back through the old fd first:
  // the failed sync left those pages cache-resident (possibly marked
  // clean without reaching the platter), and this read is the only
  // remaining copy of them.
  std::string tail;
  const int64_t flushed_tail = write_offset() - durable_offset;
  if (flushed_tail > 0) {
    INCENTAG_RETURN_IF_ERROR(ReadAt(durable_offset, flushed_tail, &tail));
  }
  tail.append(buffer_);
  // Raw close, not Close(): Close() flushes the buffer through the
  // descriptor this routine exists to distrust.
  ::close(fd_);
  fd_ = -1;
  const std::string path = path_;
  const int64_t logical_size = size_;
  buffer_.clear();
  size_ = 0;
  INCENTAG_RETURN_IF_ERROR(Open(path, durable_offset));
  buffer_ = std::move(tail);
  size_ = logical_size;
  return Status::OK();
}

Status AppendFile::ReadAt(int64_t offset, int64_t length,
                          std::string* out) const {
  if (!is_open()) return Status::FailedPrecondition("AppendFile not open");
  if (offset < 0 || length < 0) {
    return Status::InvalidArgument("negative file range");
  }
  out->resize(static_cast<size_t>(length));
  size_t have = 0;
  while (have < out->size()) {
    const ssize_t n =
        ::pread(fd_, out->data() + have, out->size() - have,
                static_cast<off_t>(offset + static_cast<int64_t>(have)));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", path_);
    }
    if (n == 0) {
      return Status::OutOfRange(
          "short read at offset " +
          std::to_string(offset + static_cast<int64_t>(have)) + " of " +
          path_);
    }
    have += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status AppendFile::Close() {
  if (!is_open()) return Status::OK();
  Status status = Flush();
  if (::close(fd_) != 0 && status.ok()) {
    status = ErrnoStatus("close", path_);
  }
  fd_ = -1;
  return status;
}

}  // namespace util
}  // namespace incentag
