#include "src/util/flags.h"

#include <cstdio>

#include "src/util/text.h"
#include "src/util/thread_pool.h"

namespace incentag {
namespace util {

void FlagSet::AddInt(std::string name, int64_t* target, std::string help) {
  flags_.push_back(
      Flag{std::move(name), Kind::kInt, target, std::move(help)});
}

void FlagSet::AddDouble(std::string name, double* target, std::string help) {
  flags_.push_back(
      Flag{std::move(name), Kind::kDouble, target, std::move(help)});
}

void FlagSet::AddBool(std::string name, bool* target, std::string help) {
  flags_.push_back(
      Flag{std::move(name), Kind::kBool, target, std::move(help)});
}

void FlagSet::AddString(std::string name, std::string* target,
                        std::string help) {
  flags_.push_back(
      Flag{std::move(name), Kind::kString, target, std::move(help)});
}

const FlagSet::Flag* FlagSet::Find(std::string_view name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagSet::SetValue(const Flag& flag, std::string_view value) {
  switch (flag.kind) {
    case Kind::kInt: {
      Result<int64_t> v = ParseInt64(value);
      if (!v.ok()) return v.status();
      *static_cast<int64_t*>(flag.target) = v.value();
      return Status::OK();
    }
    case Kind::kDouble: {
      Result<double> v = ParseDouble(value);
      if (!v.ok()) return v.status();
      *static_cast<double*>(flag.target) = v.value();
      return Status::OK();
    }
    case Kind::kBool: {
      std::string lower = AsciiToLower(value);
      if (lower == "true" || lower == "1" || lower.empty()) {
        *static_cast<bool*>(flag.target) = true;
      } else if (lower == "false" || lower == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + flag.name + ": " +
                                       std::string(value));
      }
      return Status::OK();
    }
    case Kind::kString: {
      *static_cast<std::string*>(flag.target) = std::string(value);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag kind");
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected argument: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::string_view value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + std::string(name));
    }
    if (!has_value) {
      // Bool flags may stand alone; everything else consumes the next arg.
      if (flag->kind == Kind::kBool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for --" +
                                       std::string(name));
      }
      value = argv[++i];
    }
    INCENTAG_RETURN_IF_ERROR(SetValue(*flag, value));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::string out;
  for (const Flag& f : flags_) {
    char line[256];
    const char* kind = "";
    switch (f.kind) {
      case Kind::kInt:
        kind = "int";
        break;
      case Kind::kDouble:
        kind = "float";
        break;
      case Kind::kBool:
        kind = "bool";
        break;
      case Kind::kString:
        kind = "string";
        break;
    }
    std::snprintf(line, sizeof(line), "  --%-18s (%s)  %s\n", f.name.c_str(),
                  kind, f.help.c_str());
    out += line;
  }
  return out;
}

void AddThreadsFlag(FlagSet* flags, int64_t* threads) {
  *threads = DefaultThreadCount();
  flags->AddInt("threads", threads,
                "worker threads (default: hardware concurrency)");
}

}  // namespace util
}  // namespace incentag
