// FailPoint: named, registry-based fault injection for the I/O surface
// (ISSUE 10).
//
// A fail point is a named site in production code where a test can make
// the next syscall lie: return an errno of the test's choosing, cap how
// many bytes a single write may move (forcing the short-write resume
// paths real kernels only take under memory pressure), or report an
// fsync as failed after the data actually reached the platter (the torn
// sync that makes fsyncgate-style bugs reproducible).
//
// Design constraints, in priority order:
//
//   1. Disarmed cost is one relaxed atomic load. Every pwritev and every
//      fdatasync in the fleet passes a fail point; the hot path must not
//      notice. `bench_micro_obs` hard-gates the disarmed overhead <= 1%.
//   2. Compiled out entirely under -DINCENTAG_FAILPOINTS=OFF: the macros
//      expand to nothing and release builds carry no registry, no
//      atomics, no strings.
//   3. Deterministic. Triggers are counted (nth hit, every Nth) or drawn
//      from a seeded per-point PRNG; a torture test that records its
//      seed replays the exact same fault schedule.
//
// Usage at an injection site (one static per site, file-local):
//
//   INCENTAG_FAIL_POINT_DEFINE(g_fp_pwritev, "file_io/pwritev");
//   ...
//   util::FailPoint::Fault fault;
//   if (INCENTAG_FAIL_POINT_FIRED(g_fp_pwritev, &fault) &&
//       fault.shape == util::FailPoint::Shape::kErrno) {
//     errno = fault.err;
//     return ErrnoStatus("pwritev", path_);
//   }
//
// Arming from a test:
//
//   util::FailPoint* fp = util::FailPoint::Find("file_io/pwritev");
//   util::FailPoint::Trigger t;
//   t.mode = util::FailPoint::Mode::kNthHit;   // fire on the Nth hit
//   t.n = 3;
//   util::FailPoint::Fault f;
//   f.shape = util::FailPoint::Shape::kErrno;
//   f.err = ENOSPC;
//   fp->Arm(t, f);
//   ...
//   fp->Disarm();                 // or util::FailPoint::DisarmAll()
//
// Naming convention: "<layer>/<syscall-or-step>", e.g. "file_io/pwritev",
// "fsync_domain/log_sync", "compactor/rename". See CONTRIBUTING.md for
// the full site list.
#ifndef INCENTAG_UTIL_FAIL_POINT_H_
#define INCENTAG_UTIL_FAIL_POINT_H_

#include <cerrno>
#include <cstdint>
#include <string>
#include <vector>

#if !defined(INCENTAG_FAILPOINTS)
#define INCENTAG_FAILPOINTS 0
#endif

#if INCENTAG_FAILPOINTS

#include <atomic>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace util {

class FailPoint {
 public:
  // What the site should pretend happened.
  enum class Shape {
    kErrno,       // The syscall fails with `err`; no bytes move.
    kShortWrite,  // One write moves at most `max_bytes` bytes.
    kTornSync,    // The sync really happens, then reports `err` anyway —
                  // the data is durable but the caller must not trust it.
  };

  struct Fault {
    Shape shape = Shape::kErrno;
    int err = EIO;
    int64_t max_bytes = 0;  // kShortWrite: per-syscall byte cap (> 0).
  };

  // When an armed point fires.
  enum class Mode {
    kAlways,       // Every hit.
    kNthHit,       // Exactly the `n`th hit after arming (1-based).
    kEveryNth,     // Hits n, 2n, 3n, ... after arming.
    kProbability,  // Each hit independently with probability
                   // `probability`, drawn from a PRNG seeded by `seed`.
  };

  struct Trigger {
    Mode mode = Mode::kAlways;
    uint64_t n = 1;            // kNthHit / kEveryNth.
    double probability = 1.0;  // kProbability, in [0, 1].
    uint64_t seed = 1;         // kProbability PRNG seed.
    // Stop firing after this many fires; 0 = unlimited. The torture test
    // uses small caps so every injected fault is recoverable.
    uint64_t max_fires = 0;
  };

  // Registers this point under `name`. Points are namespace-scope
  // statics in the TU that hosts the site; `name` must be a string
  // literal (the registry stores the pointer) and unique process-wide.
  explicit FailPoint(const char* name);
  ~FailPoint();

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  const char* name() const { return name_; }

  // True when armed — the disarmed fast path is exactly this relaxed
  // load, done by the INCENTAG_FAIL_POINT_FIRED macro before anything
  // else.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Arms the point; resets hit/fire counters and the PRNG.
  void Arm(const Trigger& trigger, const Fault& fault);
  void Disarm();

  // Records a hit and decides whether the fault fires. On true, `*out`
  // is the armed fault. Sites call this through the macro only after
  // armed() returned true, so the mutex is never touched when disarmed.
  bool Fire(Fault* out);

  // Hits and fires since the last Arm(). Counters freeze at Disarm() so
  // tests can assert accounting after the run.
  uint64_t hits() const;
  uint64_t fires() const;

  // Registry lookups. Points register at static-init time of their TU,
  // so Find() works before the site first executes.
  static FailPoint* Find(const std::string& name);
  static std::vector<FailPoint*> All();
  static void DisarmAll();

 private:
  const char* const name_;
  std::atomic<bool> armed_{false};
  mutable Mutex mu_;
  Trigger trigger_ GUARDED_BY(mu_);
  Fault fault_ GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t fires_ GUARDED_BY(mu_) = 0;
  uint64_t prng_ GUARDED_BY(mu_) = 0;
};

}  // namespace util
}  // namespace incentag

// Defines the file-local fail point for one injection site.
#define INCENTAG_FAIL_POINT_DEFINE(var, name) \
  ::incentag::util::FailPoint var { name }

// One relaxed load when disarmed; evaluates the trigger (and fills
// `fault_ptr`) only when armed.
#define INCENTAG_FAIL_POINT_FIRED(var, fault_ptr) \
  (__builtin_expect((var).armed(), 0) && (var).Fire(fault_ptr))

// True when the point is armed at all — sites that must pre-commit to a
// slow path (e.g. skipping the io_uring fast path so the POSIX ladder
// sees the fault) check this without consuming a hit.
#define INCENTAG_FAIL_POINT_ARMED(var) \
  (__builtin_expect((var).armed(), 0))

#else  // !INCENTAG_FAILPOINTS

namespace incentag {
namespace util {

// Compiled-out stub: sites still define a point object and name a Fault
// to fill, but the macros evaluate to constant false and the optimizer
// deletes the dead branches — no registry, no atomics, no strings.
class FailPoint {
 public:
  enum class Shape { kErrno, kShortWrite, kTornSync };
  struct Fault {
    Shape shape = Shape::kErrno;
    int err = EIO;
    int64_t max_bytes = 0;
  };
};

}  // namespace util
}  // namespace incentag

#define INCENTAG_FAIL_POINT_DEFINE(var, name) \
  [[maybe_unused]] ::incentag::util::FailPoint var {}
#define INCENTAG_FAIL_POINT_FIRED(var, fault_ptr) \
  ((void)(var), (void)(fault_ptr), false)
#define INCENTAG_FAIL_POINT_ARMED(var) ((void)(var), false)

#endif  // INCENTAG_FAILPOINTS

#endif  // INCENTAG_UTIL_FAIL_POINT_H_
