#include "src/util/json.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace incentag {
namespace util {
namespace json {
namespace {

bool IsJsonSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool IsHexDigit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

// Recursive-descent parser. Depth is bounded by ParseOptions so a
// hostile body cannot exhaust the stack.
class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Result<Value> Run() {
    Value v;
    Status s = ParseValue(0, &v);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(std::string_view what) const {
    return Status::InvalidArgument("json: " + std::string(what) +
                                   " at byte " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() && IsJsonSpace(text_[pos_])) ++pos_;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(int depth, Value* out) {
    if (depth > options_.max_depth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        *out = Value::Null();
        return Status::OK();
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        *out = Value::Bool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        *out = Value::Bool(false);
        return Status::OK();
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(depth, out);
      case '{':
        return ParseObject(depth, out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // Leading zero admits no further integer digits.
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The slice is a valid JSON number by construction, and JSON numbers
    // are a strict subset of strtod's grammar, so conversion cannot fail;
    // out-of-range magnitudes are still rejected below.
    std::string slice(text_.substr(start, pos_ - start));
    double d = std::strtod(slice.c_str(), nullptr);
    if (!std::isfinite(d)) return Error("number out of range");
    *out = Value::Number(d);
    return Status::OK();
  }

  Status ParseString(Value* out) {
    std::string s;
    Status status = ParseRawString(&s);
    if (!status.ok()) return status;
    *out = Value::Str(std::move(s));
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    ++pos_;  // Opening quote, verified by the caller.
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          Status s = ParseHex4(&cp);
          if (!s.ok()) return s;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            s = ParseHex4(&low);
            if (!s.ok()) return s;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      if (!IsHexDigit(c)) return Error("invalid \\u escape");
      v = (v << 4) | static_cast<uint32_t>(HexValue(c));
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ParseArray(int depth, Value* out) {
    ++pos_;  // '['
    Value arr = Value::Array();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = std::move(arr);
      return Status::OK();
    }
    while (true) {
      Value elem;
      Status s = ParseValue(depth + 1, &elem);
      if (!s.ok()) return s;
      arr.Append(std::move(elem));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        return Error("expected ',' or ']' in array");
      }
    }
    *out = std::move(arr);
    return Status::OK();
  }

  Status ParseObject(int depth, Value* out) {
    ++pos_;  // '{'
    Value obj = Value::Object();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = std::move(obj);
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status s = ParseRawString(&key);
      if (!s.ok()) return s;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      Value member;
      s = ParseValue(depth + 1, &member);
      if (!s.ok()) return s;
      obj.Set(std::move(key), std::move(member));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        return Error("expected ',' or '}' in object");
      }
    }
    *out = std::move(obj);
    return Status::OK();
  }

  std::string_view text_;
  ParseOptions options_;
  size_t pos_ = 0;
};

void AppendNumber(double d, std::string* out) {
  // Exact integers in the double-safe range print without a fraction so
  // ids/seqs survive a textual round trip unchanged.
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (d == std::floor(d) && std::fabs(d) <= kMaxExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

}  // namespace

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void AppendQuoted(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

void Value::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      AppendNumber(number_, out);
      break;
    case Kind::kString:
      AppendQuoted(string_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& v : items_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const Member& m : members_) {
        if (!first) out->push_back(',');
        first = false;
        AppendQuoted(m.first, out);
        out->push_back(':');
        m.second.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<Value> Parse(std::string_view text, ParseOptions options) {
  Parser parser(text, options);
  return parser.Run();
}

}  // namespace json
}  // namespace util
}  // namespace incentag
