#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace incentag {
namespace util {

int DefaultThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
  return true;
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  // Exactly one caller joins; concurrent or repeated Shutdown() calls
  // (explicit call then destructor, two owners racing) block here until
  // the join is complete instead of racing on the same std::thread.
  std::call_once(join_once_, [this] {
    for (std::thread& worker : workers_) worker.join();
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(&mu_);
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace util
}  // namespace incentag
