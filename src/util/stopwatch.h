// Wall-clock stopwatch for the runtime figures (paper Figures 6(g), 6(h)).
#ifndef INCENTAG_UTIL_STOPWATCH_H_
#define INCENTAG_UTIL_STOPWATCH_H_

#include <chrono>

namespace incentag {
namespace util {

// Starts running on construction; Elapsed* report time since construction
// or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_STOPWATCH_H_
