#include "src/util/io_uring.h"

#include "src/util/fail_point.h"

#ifdef INCENTAG_HAVE_IO_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#endif

namespace incentag {
namespace util {

#ifndef INCENTAG_HAVE_IO_URING

// Compiled out (INCENTAG_IO_URING=OFF): every caller takes the POSIX
// path. The stubs keep the call sites free of preprocessor branches.
bool IoUringEnabled() { return false; }

Status IoUringWriteAndSync(int /*fd*/, const struct iovec* /*iov*/,
                           int /*iovcnt*/, int64_t /*offset*/,
                           size_t* written, bool* synced) {
  *written = 0;
  *synced = false;
  return Status::FailedPrecondition("io_uring backend not compiled in");
}

#else

namespace {

// user_data tags for matching CQEs back to their SQE.
constexpr uint64_t kWriteTag = 1;
constexpr uint64_t kSyncTag = 2;

int SysUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

// Latched when the ring reaches a state whose outcome we could not
// observe (an io_uring_enter error after SQEs were already submitted):
// all later durability work takes the POSIX path.
std::atomic<bool> g_ring_broken{false};

// One SQ/CQ pair mapped from the kernel. Depth 8 is generous: the only
// user submits chains of at most two SQEs and reaps them synchronously.
class Ring {
 public:
  // nullptr when the kernel (or a seccomp sandbox) refuses io_uring —
  // the probe result is the runtime-detection the header promises.
  static Ring* Create() {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysUringSetup(8, &params);
    if (fd < 0) return nullptr;

    Ring* ring = new Ring();
    ring->fd_ = fd;
    ring->sq_ring_bytes_ =
        params.sq_off.array + params.sq_entries * sizeof(unsigned);
    ring->cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && ring->cq_ring_bytes_ > ring->sq_ring_bytes_) {
      ring->sq_ring_bytes_ = ring->cq_ring_bytes_;
    }
    ring->sq_ring_ = ::mmap(nullptr, ring->sq_ring_bytes_,
                            PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                            IORING_OFF_SQ_RING);
    if (ring->sq_ring_ == MAP_FAILED) {
      ring->sq_ring_ = nullptr;
      delete ring;
      return nullptr;
    }
    if (single_mmap) {
      ring->cq_ring_ = ring->sq_ring_;
      ring->cq_ring_bytes_ = 0;  // owned by the SQ mapping
    } else {
      ring->cq_ring_ = ::mmap(nullptr, ring->cq_ring_bytes_,
                              PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                              IORING_OFF_CQ_RING);
      if (ring->cq_ring_ == MAP_FAILED) {
        ring->cq_ring_ = nullptr;
        delete ring;
        return nullptr;
      }
    }
    ring->sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    void* sqes = ::mmap(nullptr, ring->sqe_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) {
      delete ring;
      return nullptr;
    }
    ring->sqes_ = static_cast<io_uring_sqe*>(sqes);

    char* sq = static_cast<char*>(ring->sq_ring_);
    ring->sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    ring->sq_mask_ =
        reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    ring->sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    char* cq = static_cast<char*>(ring->cq_ring_);
    ring->cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    ring->cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    ring->cq_mask_ =
        reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    ring->cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    return ring;
  }

  ~Ring() {
    if (sqes_ != nullptr) ::munmap(sqes_, sqe_bytes_);
    if (cq_ring_ != nullptr && cq_ring_bytes_ != 0) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
    if (fd_ >= 0) ::close(fd_);
  }

  Status WriteAndSync(int file_fd, const struct iovec* iov, int iovcnt,
                      int64_t offset, size_t* written, bool* synced) {
    *written = 0;
    *synced = false;
    const unsigned mask = *sq_mask_;
    unsigned tail =
        std::atomic_ref<unsigned>(*sq_tail_).load(std::memory_order_relaxed);
    unsigned queued = 0;
    const auto push = [&](uint64_t tag) -> io_uring_sqe* {
      const unsigned idx = tail & mask;
      io_uring_sqe* sqe = &sqes_[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->fd = file_fd;
      sqe->user_data = tag;
      sq_array_[idx] = idx;
      ++tail;
      ++queued;
      return sqe;
    };
    if (iovcnt > 0) {
      io_uring_sqe* write_sqe = push(kWriteTag);
      write_sqe->opcode = IORING_OP_WRITEV;
      write_sqe->addr = reinterpret_cast<uint64_t>(iov);
      write_sqe->len = static_cast<unsigned>(iovcnt);
      write_sqe->off = static_cast<uint64_t>(offset);
      // The chain: the fdatasync below starts only after this write
      // completed, and is cancelled if it completed short or failed.
      write_sqe->flags = IOSQE_IO_LINK;
    }
    io_uring_sqe* sync_sqe = push(kSyncTag);
    sync_sqe->opcode = IORING_OP_FSYNC;
    sync_sqe->fsync_flags = IORING_FSYNC_DATASYNC;
    std::atomic_ref<unsigned>(*sq_tail_).store(tail,
                                               std::memory_order_release);

    // Submit and reap in one crossing; loop only for EINTR or a CQ that
    // fills across two peeks.
    unsigned submitted = 0;
    unsigned completed = 0;
    int64_t write_res = iovcnt > 0 ? -1 : 0;
    int sync_res = -ECANCELED;
    while (completed < queued) {
      const int n = SysUringEnter(fd_, queued - submitted,
                                  queued - completed, IORING_ENTER_GETEVENTS);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (submitted == 0) {
          // Nothing entered the kernel; the caller can take the POSIX
          // path as if this call never happened.
          g_ring_broken.store(true, std::memory_order_relaxed);
          return Status::OK();
        }
        // SQEs are in flight but unreapable: whether (and how much of)
        // the write landed is unknowable, and a POSIX retry could write
        // bytes twice. Surface a hard error instead of guessing.
        g_ring_broken.store(true, std::memory_order_relaxed);
        return Status::IoError(
            std::string("io_uring_enter failed mid-flight: ") +
            std::strerror(errno));
      }
      submitted += static_cast<unsigned>(n);
      unsigned head = std::atomic_ref<unsigned>(*cq_head_)
                          .load(std::memory_order_relaxed);
      const unsigned cq_tail = std::atomic_ref<unsigned>(*cq_tail_)
                                   .load(std::memory_order_acquire);
      while (head != cq_tail && completed < queued) {
        const io_uring_cqe& cqe = cqes_[head & *cq_mask_];
        if (cqe.user_data == kWriteTag) {
          write_res = cqe.res;
        } else if (cqe.user_data == kSyncTag) {
          sync_res = cqe.res;
        }
        ++head;
        ++completed;
      }
      std::atomic_ref<unsigned>(*cq_head_).store(head,
                                                 std::memory_order_release);
    }

    // A failed or short write reports written=partial/0 and synced=false;
    // the caller's POSIX fallback resumes from the right byte and
    // surfaces the errno if it persists.
    if (write_res > 0) *written = static_cast<size_t>(write_res);
    *synced = sync_res == 0;
    return Status::OK();
  }

 private:
  Ring() = default;

  int fd_ = -1;
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  size_t cq_ring_bytes_ = 0;  // 0 when shared with the SQ mapping
  io_uring_sqe* sqes_ = nullptr;
  size_t sqe_bytes_ = 0;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
};

// The process-wide ring, created on first use and deliberately leaked
// (durability code may run during static teardown). nullptr latches the
// "kernel refused" probe result.
Ring* GlobalRing() {
  static Ring* ring = Ring::Create();
  return ring;
}

util::Mutex* RingMutex() {
  static util::Mutex* mu = new util::Mutex();
  return mu;
}

bool EnvEnabled() {
  static const bool enabled = [] {
    const char* value = std::getenv("INCENTAG_IO_URING");
    if (value == nullptr) return true;
    const std::string v(value);
    return !(v == "0" || v == "off" || v == "OFF" || v == "false" ||
             v == "FALSE");
  }();
  return enabled;
}

}  // namespace

bool IoUringEnabled() {
  if (!EnvEnabled()) return false;
  if (g_ring_broken.load(std::memory_order_relaxed)) return false;
  return GlobalRing() != nullptr;
}

// Models the worst ring outcome — io_uring_enter failing after SQEs
// were submitted, leaving the write extent unknowable. Deliberately
// does NOT latch g_ring_broken: torture runs inject this repeatedly
// and still expect later windows to use the ring.
INCENTAG_FAIL_POINT_DEFINE(g_fail_submit, "io_uring/submit");

Status IoUringWriteAndSync(int fd, const struct iovec* iov, int iovcnt,
                           int64_t offset, size_t* written, bool* synced) {
  *written = 0;
  *synced = false;
  FailPoint::Fault fault;
  if (INCENTAG_FAIL_POINT_FIRED(g_fail_submit, &fault)) {
    return Status::IoError(
        std::string("io_uring_enter failed mid-flight (injected): ") +
            std::strerror(fault.err),
        fault.err);
  }
  Ring* ring = GlobalRing();
  if (ring == nullptr) {
    return Status::FailedPrecondition("io_uring unavailable");
  }
  util::MutexLock lock(RingMutex());
  return ring->WriteAndSync(fd, iov, iovcnt, offset, written, synced);
}

#endif  // INCENTAG_HAVE_IO_URING

}  // namespace util
}  // namespace incentag
