// Deterministic pseudo-random number generation for incentag.
//
// Every stochastic component of the library (corpus generation, crowd
// behaviour, sampling) draws from an explicitly seeded Rng so that whole
// experiments are reproducible bit-for-bit. The generator is xoshiro256**
// seeded through SplitMix64, which is fast, high quality, and — unlike
// std::mt19937 with std::uniform_int_distribution — produces identical
// streams across standard library implementations.
#ifndef INCENTAG_UTIL_RANDOM_H_
#define INCENTAG_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace incentag {
namespace util {

// SplitMix64 step; used for seeding and for hashing seeds together.
// Public because the simulator derives per-resource sub-seeds with it.
uint64_t SplitMix64(uint64_t* state);

// Mixes two seeds into one (order-sensitive). Used to derive independent
// sub-streams, e.g. MixSeeds(corpus_seed, resource_id).
uint64_t MixSeeds(uint64_t a, uint64_t b);

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  // A default-constructed Rng uses a fixed seed; experiments should always
  // pass their own.
  explicit Rng(uint64_t seed = 0x1CEB00DAu);

  // Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t NextUint64();

  // Uniform on [0, bound). bound must be > 0. Uses rejection sampling, so
  // the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  // Uniform on [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform on [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Standard normal via Box–Muller (no cached spare; stateless per call
  // pair of uniforms, keeps replay simple).
  double NextGaussian();

  // Samples an index from the non-negative weight vector proportionally to
  // the weights. Requires at least one strictly positive weight.
  size_t NextWeighted(const std::vector<double>& weights);

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextUint64(); }

 private:
  uint64_t s_[4];
};

// Fisher–Yates shuffle driven by Rng (deterministic across platforms,
// unlike std::shuffle whose output is unspecified).
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  if (v->size() < 2) return;
  for (size_t i = v->size() - 1; i > 0; --i) {
    size_t j = static_cast<size_t>(rng->NextBounded(i + 1));
    using std::swap;
    swap((*v)[i], (*v)[j]);
  }
}

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_RANDOM_H_
