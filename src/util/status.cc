#include "src/util/status.h"

namespace incentag {
namespace util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace util
}  // namespace incentag
