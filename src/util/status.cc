#include "src/util/status.h"

#include <cerrno>

namespace incentag {
namespace util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

IoErrorClass ClassifyIoError(const Status& status) {
  if (status.ok()) return IoErrorClass::kNotIoError;
  // kResourceExhausted maps to the same retry ladder as ENOSPC: both
  // mean "the resource may come back".
  if (status.code() == StatusCode::kResourceExhausted) {
    return IoErrorClass::kTransient;
  }
  if (status.code() != StatusCode::kIoError) return IoErrorClass::kNotIoError;
  switch (status.sys_errno()) {
    case ENOSPC:      // Disk full: compaction/unlink elsewhere can clear it.
    case EDQUOT:      // Quota full: same shape as ENOSPC.
    case EAGAIN:      // Kernel would block; transient by definition.
    case EINTR:       // Signal; the loops normally absorb this inline.
    case ENOMEM:      // Kernel allocation pressure.
    case EBUSY:       // Contended resource.
    case ETIMEDOUT:   // Slow path under load.
    case EIO:         // Bounded-transient: one medium hiccup is worth the
                      // ladder; a sick medium exhausts it and escalates.
      return IoErrorClass::kTransient;
    default:
      // Includes errno 0 (not captured): guessing "transient" on an
      // unknown failure risks a retry loop against a dead disk.
      return IoErrorClass::kPermanent;
  }
}

}  // namespace util
}  // namespace incentag
