// Little-endian wire encoding shared by the persist layer's journal
// records and the core layer's resumable-state snapshots.
//
// The format is deliberately primitive — fixed-width little-endian
// integers, raw IEEE-754 bit patterns for doubles, length-prefixed byte
// strings — because both producers need *bit-exact* round trips:
// recovery from a serialized core::CampaignRuntime is only byte-identical
// to a journal replay if every accumulated double restores to the exact
// bits that were saved. Writers append to a std::string; Reader is a
// bounds-checked cursor that never reads past its view and reports
// exhaustion instead of throwing.
#ifndef INCENTAG_UTIL_WIRE_H_
#define INCENTAG_UTIL_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace incentag {
namespace util {
namespace wire {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

// Raw IEEE-754 bits, so the value restores bit-exactly (NaNs included).
inline void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// Bounds-checked cursor over an encoded buffer. Every getter returns
// false (and leaves the output unspecified) when the buffer is too
// short; decoding code turns that into a corruption error.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (data_.size() - pos_ < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (data_.size() - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t raw;
    if (!GetU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }

  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetString(std::string* v) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (data_.size() - pos_ < len) return false;
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  // Zero-copy view variant of GetString; the view aliases the Reader's
  // underlying buffer.
  bool GetStringView(std::string_view* v) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (data_.size() - pos_ < len) return false;
    *v = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace wire
}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_WIRE_H_
