// BoundedQueue<T>: a blocking multi-producer/multi-consumer queue with a
// fixed capacity, used as the backpressure point between the service
// layer's assignment loops and the simulated tagger crowd
// (src/sim/load_generator.h). Producers block when the queue is full, so a
// burst of campaign batches cannot outrun the taggers unboundedly.
//
// Close() wakes everyone: pending and future pushes fail, pops drain the
// remaining items and then fail. All operations are linearizable under the
// internal mutex; this is deliberately a simple primitive, not a lock-free
// structure — it sits off the campaigns' hot path.
#ifndef INCENTAG_UTIL_BOUNDED_QUEUE_H_
#define INCENTAG_UTIL_BOUNDED_QUEUE_H_

#include <cassert>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (dropping `value`) once closed.
  bool Push(T value) EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mu_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    // Notify after unlock so the woken consumer doesn't immediately
    // block on a still-held mu_.
    not_empty_.NotifyOne();
    return true;
  }

  // Non-blocking push; false when full or closed.
  bool TryPush(T value) EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.NotifyOne();
    return true;
  }

  // Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() EXCLUDES(mu_) {
    std::optional<T> value;
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(&mu_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return value;
  }

  // Non-blocking pop; nullopt when nothing is queued.
  std::optional<T> TryPop() EXCLUDES(mu_) {
    std::optional<T> value;
    {
      MutexLock lock(&mu_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return value;
  }

  // Idempotent. Unblocks all waiters; the queue drains but accepts no
  // more items.
  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_BOUNDED_QUEUE_H_
