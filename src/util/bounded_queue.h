// BoundedQueue<T>: a blocking multi-producer/multi-consumer queue with a
// fixed capacity, used as the backpressure point between the service
// layer's assignment loops and the simulated tagger crowd
// (src/sim/load_generator.h). Producers block when the queue is full, so a
// burst of campaign batches cannot outrun the taggers unboundedly.
//
// Close() wakes everyone: pending and future pushes fail, pops drain the
// remaining items and then fail. All operations are linearizable under the
// internal mutex; this is deliberately a simple primitive, not a lock-free
// structure — it sits off the campaigns' hot path.
#ifndef INCENTAG_UTIL_BOUNDED_QUEUE_H_
#define INCENTAG_UTIL_BOUNDED_QUEUE_H_

#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace incentag {
namespace util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (dropping `value`) once closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; false when full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  // Non-blocking pop; nullopt when nothing is queued.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  // Idempotent. Unblocks all waiters; the queue drains but accepts no
  // more items.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_BOUNDED_QUEUE_H_
