// CRC-32 (IEEE 802.3 polynomial, reflected) for journal record integrity.
//
// The persist layer (src/persist/journal.h) frames every record as
// [length | crc | payload] and verifies the checksum on read, so a torn
// write at the tail of a campaign journal — the expected failure mode of
// a crash mid-append — is detected and the journal recovered up to the
// last intact record. Table-driven slicing-by-8 (eight bytes per step);
// compile with -DINCENTAG_CRC32_ONE_TABLE (CMake option
// INCENTAG_CRC32_SLICING=OFF) to fall back to the classic one-table,
// one-byte-per-step loop — same checksums, ~4x slower on long buffers,
// 7 KiB less table.
#ifndef INCENTAG_UTIL_CRC32_H_
#define INCENTAG_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace incentag {
namespace util {

// CRC-32 of `data`, continuing from `seed` (pass the previous return value
// to checksum a logical buffer in chunks). The default seed checksums from
// scratch.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_CRC32_H_
