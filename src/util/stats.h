// Summary statistics and histograms used by the benchmark harnesses.
//
// Figure 1(b) is a log-log histogram of posts-per-resource; the Section I
// statistics are percentiles and shares over the same distribution; Figure
// 7(b) reports the Pearson correlation of Eq. 15. These helpers implement
// those aggregations once, with tests, so every bench prints from the same
// code.
#ifndef INCENTAG_UTIL_STATS_H_
#define INCENTAG_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace incentag {
namespace util {

// Running mean / variance (Welford). Numerically stable for long streams.
class RunningStats {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Pearson correlation coefficient (Eq. 15 of the paper). Returns 0 when
// either series has zero variance or the series are shorter than 2.
// Requires xs.size() == ys.size().
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

// p-th percentile by linear interpolation on a copy of `values`; p is
// clamped to [0, 100]. Returns 0 for an empty vector.
double Percentile(std::vector<double> values, double p);

// Histogram with logarithmic (base-10) buckets starting at 1, mirroring the
// axes of the paper's Figure 1(b): bucket i covers [10^i, 10^(i+1)).
class LogHistogram {
 public:
  void Add(uint64_t value);
  // Count of values in [10^i, 10^(i+1)); i < NumBuckets().
  uint64_t BucketCount(size_t i) const;
  size_t NumBuckets() const { return buckets_.size(); }
  uint64_t total() const { return total_; }
  uint64_t zeros() const { return zeros_; }

  // Multi-line "10^i..10^(i+1): count" rendering for bench output.
  std::string ToString() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
  uint64_t zeros_ = 0;
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_STATS_H_
