// Minimal leveled logging for incentag.
//
// The library itself logs sparingly (benchmarks and examples print their own
// reports). The macros write a single line to stderr and are safe to call
// from any translation unit. Verbosity is controlled at runtime:
//
//   incentag::util::SetLogLevel(incentag::util::LogLevel::kWarning);
#ifndef INCENTAG_UTIL_LOGGING_H_
#define INCENTAG_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace incentag {
namespace util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Sets the minimum level that will be printed. Thread-compatible: call it
// before spawning workers.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a --log_level flag value: "debug", "info", "warn" (or
// "warning"), "error", "none". Returns false (leaving *out untouched)
// for anything else.
bool ParseLogLevel(std::string_view name, LogLevel* out);

// Internal: printf-style sink used by the macros below.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) __attribute__((format(printf, 4, 5)));

}  // namespace util
}  // namespace incentag

#define INCENTAG_LOG_DEBUG(...)                                       \
  ::incentag::util::LogMessage(::incentag::util::LogLevel::kDebug,    \
                               __FILE__, __LINE__, __VA_ARGS__)
#define INCENTAG_LOG_INFO(...)                                        \
  ::incentag::util::LogMessage(::incentag::util::LogLevel::kInfo,     \
                               __FILE__, __LINE__, __VA_ARGS__)
#define INCENTAG_LOG_WARN(...)                                        \
  ::incentag::util::LogMessage(::incentag::util::LogLevel::kWarning,  \
                               __FILE__, __LINE__, __VA_ARGS__)
#define INCENTAG_LOG_ERROR(...)                                       \
  ::incentag::util::LogMessage(::incentag::util::LogLevel::kError,    \
                               __FILE__, __LINE__, __VA_ARGS__)

// Fatal check used for programmer errors (not data errors; those use
// Status). Always on, also in release builds.
#define INCENTAG_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::incentag::util::LogMessage(::incentag::util::LogLevel::kError,    \
                                   __FILE__, __LINE__,                    \
                                   "CHECK failed: %s", #cond);            \
      ::std::abort();                                                     \
    }                                                                     \
  } while (false)

#endif  // INCENTAG_UTIL_LOGGING_H_
