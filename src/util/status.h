// Status and Result<T>: exception-free error handling for incentag.
//
// The library follows the RocksDB/Arrow convention: fallible operations
// return a Status (or a Result<T> when they also produce a value), and
// callers are expected to check it. Exceptions are not used anywhere in
// incentag.
//
// Example:
//   incentag::util::Result<Dataset> ds = Dataset::Load(path);
//   if (!ds.ok()) {
//     LOG_ERROR("load failed: %s", ds.status().ToString().c_str());
//     return ds.status();
//   }
//   Use(ds.value());
#ifndef INCENTAG_UTIL_STATUS_H_
#define INCENTAG_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace incentag {
namespace util {

// Machine-readable error category. Keep the list short; the human-readable
// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kIoError,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
};

// Returns a stable lower-case name for `code` ("ok", "invalid_argument", ...).
std::string_view StatusCodeName(StatusCode code);

// A cheap value type describing the outcome of an operation. OK statuses
// carry no allocation; error statuses carry a message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  // I/O error that keeps the raw errno alongside the rendered message,
  // so retry ladders can classify it (see ClassifyIoError below) without
  // parsing strerror text back out of the string.
  static Status IoError(std::string msg, int sys_errno) {
    Status status(StatusCode::kIoError, std::move(msg));
    status.sys_errno_ = sys_errno;
    return status;
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  // The errno behind a kIoError built via IoError(msg, sys_errno); 0
  // when unknown or not an I/O error.
  int sys_errno() const { return sys_errno_; }

  // "ok" for OK statuses, otherwise "<code_name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
  int sys_errno_ = 0;
};

// How a storage layer should react to an I/O failure (ISSUE 10).
//
//   kTransient — the condition can clear on its own (disk fills drain,
//     memory pressure passes, signals end): worth a bounded
//     backoff-and-retry ladder before escalating.
//   kPermanent — retrying the same syscall cannot help (bad fd, read-only
//     filesystem, medium error surfaced as an unknown errno): escalate
//     immediately (the campaign layer quarantines the journal).
//
// kIoError with no captured errno classifies permanent: guessing
// "transient" on an unknown failure risks retry loops against a dead
// disk, while a spurious quarantine is recoverable by design.
enum class IoErrorClass {
  kNotIoError,
  kTransient,
  kPermanent,
};

IoErrorClass ClassifyIoError(const Status& status);

// A Status plus a value of type T when (and only when) the status is OK.
// Accessing value() on a non-OK result aborts in debug builds and is
// undefined in release builds; always check ok() first.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace incentag

// Propagates an error Status from an expression, RocksDB-style:
//   INCENTAG_RETURN_IF_ERROR(DoThing());
#define INCENTAG_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::incentag::util::Status _st = (expr);             \
    if (!_st.ok()) return _st;                         \
  } while (false)

#endif  // INCENTAG_UTIL_STATUS_H_
