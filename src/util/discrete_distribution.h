// DiscreteDistribution: O(log n) sampling from a fixed weight vector.
//
// Built once from non-negative weights, sampled many times (binary search
// over the cumulative sums). Used for the crowd's popularity-biased
// resource choice and for drawing tags from latent tag distributions, where
// Rng::NextWeighted's O(n) scan would dominate the simulator.
#ifndef INCENTAG_UTIL_DISCRETE_DISTRIBUTION_H_
#define INCENTAG_UTIL_DISCRETE_DISTRIBUTION_H_

#include <cstddef>
#include <vector>

#include "src/util/random.h"

namespace incentag {
namespace util {

class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;

  // Weights must be non-negative with at least one strictly positive entry.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  bool empty() const { return cdf_.empty(); }
  size_t size() const { return cdf_.size(); }

  // Probability mass of index i.
  double Pmf(size_t i) const;

  // Samples an index proportionally to its weight.
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_DISCRETE_DISTRIBUTION_H_
