#include "src/util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace incentag {
namespace util {

ZipfSampler::ZipfSampler(size_t n, double s) : s_(s), total_(0.0) {
  assert(n >= 1);
  assert(s >= 0.0);
  cdf_.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    total_ += std::pow(static_cast<double>(k + 1), -s);
    cdf_.push_back(total_);
  }
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double target = rng->NextDouble() * total_;
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t k) const {
  assert(k < cdf_.size());
  double prev = (k == 0) ? 0.0 : cdf_[k - 1];
  return (cdf_[k] - prev) / total_;
}

std::vector<double> ZipfWeights(size_t n, double s) {
  std::vector<double> w(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    w[k] = std::pow(static_cast<double>(k + 1), -s);
    total += w[k];
  }
  for (double& x : w) x /= total;
  return w;
}

}  // namespace util
}  // namespace incentag
