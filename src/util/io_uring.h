// Minimal io_uring backend for AppendFile's durability path (ISSUE 9).
//
// The journal sink's steady state is "push bytes, fdatasync" — two
// kernel crossings per journal per batching window on the POSIX path.
// io_uring collapses them: a WRITEV SQE linked (IOSQE_IO_LINK) to an
// FDATASYNC SQE is one io_uring_enter that both writes and makes
// durable, and the kernel guarantees the sync runs only after the write
// completed. This module speaks the raw syscall interface
// (io_uring_setup / io_uring_enter + mmap'd rings) because the tree
// takes no dependencies — no liburing.
//
// Availability is decided in three stages, all graceful:
//   * compile time — built only under INCENTAG_IO_URING=ON
//     (INCENTAG_HAVE_IO_URING); otherwise IoUringEnabled() is a
//     constant false and callers take the POSIX path;
//   * environment  — INCENTAG_IO_URING=0/off/OFF disables at runtime
//     (the CI fallback leg uses this to prove the POSIX path under an
//     io_uring build);
//   * runtime probe — the first use attempts io_uring_setup(2); kernels
//     or sandboxes that refuse (ENOSYS, EPERM, seccomp) latch the
//     fallback permanently.
//
// One process-wide ring serves every AppendFile, serialized by a mutex:
// submissions here are the sink thread's durability points (milliseconds
// of platter time), not a per-append hot path, so contention is nil and
// a ring per file (fd + three mmaps each) would be pure overhead.
#ifndef INCENTAG_UTIL_IO_URING_H_
#define INCENTAG_UTIL_IO_URING_H_

#include <cstddef>
#include <cstdint>

#include "src/util/status.h"

struct iovec;  // <sys/uio.h>; kept out of this header

namespace incentag {
namespace util {

// True when the io_uring backend is compiled in, not disabled via the
// INCENTAG_IO_URING environment variable, and the kernel accepted a
// probe ring. Cheap after the first call.
bool IoUringEnabled();

// Submits one linked WRITEV(fd, iov, offset) -> FDATASYNC(fd) chain and
// waits for both completions with a single io_uring_enter. With
// iovcnt == 0 only the fdatasync is submitted.
//
// *written reports the bytes the writev accepted — the kernel may write
// short, in which case the linked fdatasync is cancelled and *synced is
// false; the caller finishes the tail and syncs via the POSIX path.
// Returns non-OK only for ring-level failures (setup refused mid-flight,
// enter failed) or a hard write error; callers treat any non-OK as "fall
// back to POSIX" — nothing has been made durable.
Status IoUringWriteAndSync(int fd, const struct iovec* iov, int iovcnt,
                           int64_t offset, size_t* written, bool* synced);

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_IO_URING_H_
