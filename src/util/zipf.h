// Bounded Zipf (zeta) distribution sampler.
//
// The del.icio.us post-per-resource distribution in the paper's Figure 1(b)
// is a power law spanning five orders of magnitude; the simulator uses Zipf
// draws for resource popularity, post sizes, and tag profile shapes.
//
// Sampling uses the classic inverse-CDF over precomputed cumulative weights
// (O(log n) per draw), which is exact and fast enough for corpus-scale n.
#ifndef INCENTAG_UTIL_ZIPF_H_
#define INCENTAG_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace incentag {
namespace util {

// Draws values in [0, n) with P(k) proportional to 1 / (k + 1)^s.
class ZipfSampler {
 public:
  // n must be >= 1; s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  // Number of distinct values.
  size_t size() const { return cdf_.size(); }
  // The skew exponent.
  double exponent() const { return s_; }

  // Samples one value in [0, n).
  size_t Sample(Rng* rng) const;

  // Probability mass of value k.
  double Pmf(size_t k) const;

 private:
  double s_;
  double total_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == total_
};

// Convenience: the normalised Zipf weight vector {1/(k+1)^s} / Z, length n.
std::vector<double> ZipfWeights(size_t n, double s);

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_ZIPF_H_
