#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace incentag {
namespace util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = xs[i] - mean_x;
    double dy = ys[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  // Clamp instead of assert-only: the assert vanishes in release builds,
  // where an out-of-range p used to index past the sorted vector.
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

void LogHistogram::Add(uint64_t value) {
  ++total_;
  if (value == 0) {
    ++zeros_;
    return;
  }
  size_t bucket = 0;
  uint64_t threshold = 10;
  while (value >= threshold && bucket < 18) {
    ++bucket;
    threshold *= 10;
  }
  if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
}

uint64_t LogHistogram::BucketCount(size_t i) const {
  return i < buckets_.size() ? buckets_[i] : 0;
}

std::string LogHistogram::ToString() const {
  std::string out;
  char line[128];
  if (zeros_ > 0) {
    std::snprintf(line, sizeof(line), "%12s: %llu\n", "0",
                  static_cast<unsigned long long>(zeros_));
    out += line;
  }
  uint64_t lo = 1;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t hi = lo * 10;
    std::snprintf(line, sizeof(line), "%5llu..%-5llu: %llu\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi - 1),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
    lo = hi;
  }
  return out;
}

}  // namespace util
}  // namespace incentag
