// Small text-processing helpers for the dataset pipeline.
//
// The del.icio.us-style dump format (src/sim/delicious_format.h) is a plain
// tab/space separated text format; these helpers keep the parser free of
// locale-dependent or allocating std machinery.
#ifndef INCENTAG_UTIL_TEXT_H_
#define INCENTAG_UTIL_TEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace incentag {
namespace util {

// Removes ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

// Splits on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string_view> Split(std::string_view s, char sep);

// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

// Parses a base-10 signed integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

// Parses a base-10 unsigned integer; the whole string must be consumed.
Result<uint64_t> ParseUint64(std::string_view s);

// Parses a floating-point number; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

// Lower-cases ASCII letters in place; returns the argument for chaining.
std::string AsciiToLower(std::string_view s);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_TEXT_H_
