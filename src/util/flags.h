// Tiny command-line flag parser shared by examples and bench harnesses.
//
// Every experiment binary accepts `--name=value` / `--name value` overrides
// (scale, seed, budget, ...). This is intentionally small: no registry, no
// global state — a FlagSet is built in main(), parsed once, and queried.
//
// Example:
//   incentag::util::FlagSet flags;
//   int n = 800;
//   flags.AddInt("n", &n, "number of resources");
//   INCENTAG_CHECK(flags.Parse(argc, argv).ok());
#ifndef INCENTAG_UTIL_FLAGS_H_
#define INCENTAG_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace incentag {
namespace util {

// A set of typed --key=value flags bound to caller-owned variables.
class FlagSet {
 public:
  // Pointers must outlive Parse(). The bound variable keeps its value when
  // the flag is absent, so initialise it with the default.
  void AddInt(std::string name, int64_t* target, std::string help);
  void AddDouble(std::string name, double* target, std::string help);
  void AddBool(std::string name, bool* target, std::string help);
  void AddString(std::string name, std::string* target, std::string help);

  // Parses argv; returns InvalidArgument on unknown flags or bad values.
  // Accepts "--k=v", "--k v", and bare "--k" for bool flags.
  Status Parse(int argc, const char* const* argv);

  // One line per flag: "--name (default) help".
  std::string Usage() const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
  };

  Status SetValue(const Flag& flag, std::string_view value);
  const Flag* Find(std::string_view name) const;

  std::vector<Flag> flags_;
};

// Registers the canonical `--threads` flag on `flags`, overwriting
// *threads with its default: std::thread::hardware_concurrency() (1 when
// the runtime cannot tell). Every concurrent binary (service benches,
// campaign examples) should use this instead of hand-rolling the flag so
// the name and default stay uniform.
void AddThreadsFlag(FlagSet* flags, int64_t* threads);

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_FLAGS_H_
