// ThreadPool: the fixed worker pool that executes campaign steps for
// src/service/. Tasks are plain closures; the queue is unbounded because
// the service layer submits at most one step task per campaign at a time
// (see the scheduled-flag protocol in campaign_manager.cc), so queue depth
// is bounded by the campaign count by construction.
#ifndef INCENTAG_UTIL_THREAD_POOL_H_
#define INCENTAG_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace util {

// std::thread::hardware_concurrency(), with the mandated fallback of 1
// when the runtime cannot tell. The default for every --threads flag.
int DefaultThreadCount();

class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers immediately.
  explicit ThreadPool(int num_threads);
  // Equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution. Returns false (dropping the task) once
  // Shutdown() has begun. Safe to call from worker threads.
  bool Submit(std::function<void()> task) EXCLUDES(mu_);

  // Stops accepting tasks, runs everything already queued, joins the
  // workers. Idempotent and safe to call concurrently (late callers
  // block until the join completes). Must not be called from a worker
  // thread.
  void Shutdown() EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::once_flag join_once_;
  std::vector<std::thread> workers_;
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_THREAD_POOL_H_
