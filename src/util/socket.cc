#include "src/util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

#include "src/util/fail_point.h"

namespace incentag {
namespace util {
namespace {

Status Errno(std::string_view what) {
  const int err = errno;
  return Status::IoError(std::string(what) + ": " + std::strerror(err),
                         err);
}

// Fault-injection sites for the network edge (ISSUE 10): the HTTP
// client's retry ladder and the server's transport handling are
// exercised against exactly these synthesized failures.
INCENTAG_FAIL_POINT_DEFINE(g_fail_read, "socket/read");
INCENTAG_FAIL_POINT_DEFINE(g_fail_write, "socket/write");

// "localhost" and IPv4 literals; the fleet edge binds addresses, it
// does not resolve names.
Status ResolveIpv4(const std::string& host, struct in_addr* out) {
  std::string addr = (host == "localhost" || host.empty()) ? "127.0.0.1"
                                                           : host;
  if (inet_pton(AF_INET, addr.c_str(), out) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

void SetCloseOnExec(int fd) {
  // Benches fork subprocesses; listening fds must not leak into them.
  (void)fcntl(fd, F_SETFD, FD_CLOEXEC);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<size_t> Socket::ReadSome(char* buf, size_t capacity) {
  if (!valid()) return Status::FailedPrecondition("read on closed socket");
  FailPoint::Fault fault;
  if (INCENTAG_FAIL_POINT_FIRED(g_fail_read, &fault) &&
      fault.shape == FailPoint::Shape::kErrno) {
    errno = fault.err;
    return Errno("recv");
  }
  while (true) {
    ssize_t n = ::recv(fd_, buf, capacity, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("socket read timed out");
    }
    return Errno("recv");
  }
}

Status Socket::WriteAll(std::string_view data) {
  if (!valid()) return Status::FailedPrecondition("write on closed socket");
  FailPoint::Fault fault;
  if (INCENTAG_FAIL_POINT_FIRED(g_fail_write, &fault) &&
      fault.shape == FailPoint::Shape::kErrno) {
    errno = fault.err;
    return Errno("send");
  }
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that hangs up mid-response must surface as
    // EPIPE, not kill the process with SIGPIPE.
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::SetRecvTimeout(int timeout_ms) {
  if (!valid()) return Status::FailedPrecondition("closed socket");
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Status ListenSocket::Listen(const std::string& host, uint16_t port,
                            int backlog) {
  if (valid()) return Status::FailedPrecondition("already listening");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  INCENTAG_RETURN_IF_ERROR(ResolveIpv4(host, &addr.sin_addr));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  SetCloseOnExec(fd);
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &len) != 0) {
    Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Result<Socket> ListenSocket::AcceptWithTimeout(int timeout_ms) {
  if (!valid()) return Status::FailedPrecondition("not listening");
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  while (true) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) return Status::DeadlineExceeded("accept timed out");
    break;
  }
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetCloseOnExec(fd);
      int one = 1;
      // Responses are single WriteAll calls; disable Nagle so small
      // status replies are not delayed behind the previous segment.
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // The ready connection may have been reset before accept; treat it
    // like a timeout and let the caller loop.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Status::DeadlineExceeded("connection gone before accept");
    }
    return Errno("accept");
  }
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  INCENTAG_RETURN_IF_ERROR(ResolveIpv4(host, &addr.sin_addr));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  SetCloseOnExec(fd);
  while (true) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
}

}  // namespace util
}  // namespace incentag
