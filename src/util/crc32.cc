#include "src/util/crc32.h"

#include <array>
#include <cstring>

namespace incentag {
namespace util {

namespace {

// Reflected IEEE polynomial 0xEDB88320, the crc32 of zlib/gzip/PNG.
constexpr uint32_t kPolynomial = 0xEDB88320u;

// One-table builds keep only the classic byte-at-a-time table — that is
// the flag's whole point (1 KiB instead of 8 KiB of tables).
#if defined(INCENTAG_CRC32_ONE_TABLE)
constexpr size_t kNumTables = 1;
#else
constexpr size_t kNumTables = 8;
#endif

// table[0] is the classic one-byte-at-a-time table; table[k] advances a
// byte that sits k positions further from the end of the message, so
// eight table lookups retire eight message bytes at once (Intel's
// "slicing-by-8"). The derivation is the standard recurrence
// table[k][i] = (table[k-1][i] >> 8) ^ table[0][table[k-1][i] & 0xFF].
std::array<std::array<uint32_t, 256>, kNumTables> BuildTables() {
  std::array<std::array<uint32_t, 256>, kNumTables> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < kNumTables; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xFFu];
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, kNumTables>& Tables() {
  static const std::array<std::array<uint32_t, 256>, kNumTables> tables =
      BuildTables();
  return tables;
}

inline uint32_t LoadLe32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto& tables = Tables();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
#if !defined(INCENTAG_CRC32_ONE_TABLE)
  // Slicing-by-8: fold eight bytes per iteration through the eight
  // shifted tables. Journal encode runs a CRC pass per record, so this
  // shows up directly in the batched append path's profile.
  while (size >= 8) {
    const uint32_t lo = LoadLe32(bytes) ^ crc;
    const uint32_t hi = LoadLe32(bytes + 4);
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
#endif
  for (size_t i = 0; i < size; ++i) {
    crc = tables[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace util
}  // namespace incentag
