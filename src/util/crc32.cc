#include "src/util/crc32.h"

#include <array>

namespace incentag {
namespace util {

namespace {

// Reflected IEEE polynomial 0xEDB88320, the crc32 of zlib/gzip/PNG.
constexpr uint32_t kPolynomial = 0xEDB88320u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace util
}  // namespace incentag
