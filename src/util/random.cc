#include "src/util/random.h"

#include <cassert>
#include <cmath>

namespace incentag {
namespace util {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t MixSeeds(uint64_t a, uint64_t b) {
  uint64_t state = a;
  (void)SplitMix64(&state);
  state ^= b + 0x9E3779B97F4A7C15ULL + (state << 6) + (state >> 2);
  return SplitMix64(&state);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) { Seed(seed); }

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi] where hi - lo overflows;
  // that can only happen for the entire int64 range.
  uint64_t r = (span == 0) ? NextUint64() : NextBounded(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box–Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double two_pi = 6.28318530717958647692;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace util
}  // namespace incentag
