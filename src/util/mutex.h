// Annotated mutex primitives (ISSUE 7).
//
// Thin, zero-overhead wrappers over std::mutex / std::condition_variable
// carrying the Clang Thread Safety attributes from thread_annotations.h.
// Everything is inline and compiles to exactly the std calls it wraps —
// the perf gates (bench_service_throughput, bench_micro_journal) hold
// that claim against the PR 5/6 baselines.
//
// Usage pattern:
//
//   class Account {
//    public:
//     void Deposit(int64_t v) EXCLUDES(mu_) {
//       util::MutexLock lock(&mu_);
//       balance_ += v;
//     }
//    private:
//     int64_t TotalLocked() const REQUIRES(mu_);
//     util::Mutex mu_;
//     int64_t balance_ GUARDED_BY(mu_) = 0;
//   };
//
// Condition waits are written as explicit while-loops at the call site
// (`while (!pred()) cv_.Wait(&mu_);`) rather than predicate lambdas:
// the analysis checks each function body — including lambda bodies —
// in isolation, so a predicate lambda reading GUARDED_BY state would
// need its own annotations. An inline loop keeps the guarded reads in
// the function that demonstrably holds the lock.
#ifndef INCENTAG_UTIL_MUTEX_H_
#define INCENTAG_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace incentag {
namespace util {

class CondVar;

// std::mutex with the `capability` attribute: the unit of GUARDED_BY.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { std_.lock(); }
  void Unlock() RELEASE() { std_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return std_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex std_;
};

// RAII lock scope: the std::lock_guard of this codebase.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to util::Mutex. Wait* must be called with
// the mutex held (REQUIRES); like std::condition_variable the mutex is
// released while blocked and reacquired before return, which the
// analysis models as "held across the call". Spurious wakeups happen —
// always wait in a loop re-checking the guarded condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait;
    // release() hands ownership back without unlocking. Both are plain
    // pointer bookkeeping that the optimizer deletes.
    std::unique_lock<std::mutex> lock(mu->std_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Returns false iff the wait timed out (the mutex is reacquired
  // either way). Re-check the condition on true *and* false: a timeout
  // can race a final notify.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu,
               const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->std_, std::adopt_lock);
    const bool notified =
        cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex* mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->std_, std::adopt_lock);
    const bool notified =
        cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_MUTEX_H_
