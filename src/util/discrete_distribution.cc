#include "src/util/discrete_distribution.h"

#include <algorithm>
#include <cassert>

namespace incentag {
namespace util {

DiscreteDistribution::DiscreteDistribution(
    const std::vector<double>& weights) {
  cdf_.reserve(weights.size());
  for (double w : weights) {
    assert(w >= 0.0);
    total_ += w;
    cdf_.push_back(total_);
  }
  assert(total_ > 0.0);
}

double DiscreteDistribution::Pmf(size_t i) const {
  assert(i < cdf_.size());
  double prev = (i == 0) ? 0.0 : cdf_[i - 1];
  return (cdf_[i] - prev) / total_;
}

size_t DiscreteDistribution::Sample(Rng* rng) const {
  assert(!cdf_.empty());
  double target = rng->NextDouble() * total_;
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace util
}  // namespace incentag
