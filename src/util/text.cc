#include "src/util/text.h"

#include <cerrno>
#include <cstdlib>

namespace incentag {
namespace util {

namespace {
bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  if (s[0] == '-') return Status::InvalidArgument("negative unsigned");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<uint64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty number");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: " + buf);
  }
  return v;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace util
}  // namespace incentag
