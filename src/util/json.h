// Minimal JSON document model + parser for the HTTP edge.
//
// The obs exporters render JSON with hand-built strings (write-only);
// the HTTP ingestion tier also has to *read* JSON — request bodies carry
// campaign submissions and completion batches — so this header adds the
// read side: a small immutable Value tree, a strict RFC 8259 parser with
// hard depth/size limits (request bodies are attacker-controlled), and a
// compact serializer for responses.
//
// Scope is deliberately small: UTF-8 in/out, numbers as double (campaign
// ids and seqs fit in the 2^53 exact-integer range; the parser rejects
// nothing in range), objects keep insertion order and Find returns the
// first match. No streaming, no comments, no NaN/Inf.
#ifndef INCENTAG_UTIL_JSON_H_
#define INCENTAG_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace incentag {
namespace util {
namespace json {

class Value;

// Object members in insertion order. Duplicate keys are kept as parsed;
// Find returns the first.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static Value Int(int64_t i) {
    return Number(static_cast<double>(i));
  }
  static Value Str(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static Value Array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Accessors are forgiving on kind mismatch (return the default for the
  // requested type) so DTO decoding can validate once with kind() and
  // read without asserting.
  bool bool_value() const { return is_bool() && bool_; }
  double number_value() const { return is_number() ? number_ : 0.0; }
  // number_value() truncated toward zero; 0 for non-numbers.
  int64_t int_value() const { return static_cast<int64_t>(number_value()); }
  const std::string& string_value() const { return string_; }

  const std::vector<Value>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }

  // Array/object builders (no-ops on other kinds).
  void Append(Value v) {
    if (is_array()) items_.push_back(std::move(v));
  }
  void Set(std::string key, Value v) {
    if (is_object()) members_.emplace_back(std::move(key), std::move(v));
  }

  // First member named `key`; null when absent or not an object.
  const Value* Find(std::string_view key) const;

  // Compact serialization (no whitespace). Doubles that hold an exact
  // integer in the +-2^53 range print without a fraction, so ids and
  // seqs round-trip textually.
  std::string Dump() const;
  void DumpTo(std::string* out) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

struct ParseOptions {
  // Maximum nesting of arrays/objects; attacker-controlled bodies must
  // not be able to recurse the stack away.
  int max_depth = 64;
};

// Parses exactly one JSON document; trailing non-whitespace is an error
// (kInvalidArgument, with a byte offset in the message).
Result<Value> Parse(std::string_view text, ParseOptions options = {});

// Appends `s` as a JSON string literal (quotes + escapes) to `out` —
// shared by Dump and by hand-rolled encoders that build documents
// without a Value tree.
void AppendQuoted(std::string_view s, std::string* out);

}  // namespace json
}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_JSON_H_
