// Clang Thread Safety Analysis annotations (ISSUE 7).
//
// These macros expand to Clang's capability attributes when the
// compiler understands them and to nothing otherwise, so gcc builds see
// plain std-library code while the clang thread-safety CI job proves,
// at compile time, that every access to a GUARDED_BY member happens
// with its mutex held. The names follow the upstream Clang / Abseil
// vocabulary so the analysis documentation applies verbatim:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
//
// Conventions used across this repo:
//
//   * Every mutex is a util::Mutex (src/util/mutex.h), never a bare
//     std::mutex — the wrapper carries the CAPABILITY attribute the
//     analysis keys on.
//   * Every util::Mutex guards at least one member, and every guarded
//     member says so: `std::vector<T> items_ GUARDED_BY(mu_);`. The
//     declaration is the invariant; comments restate it only when the
//     guard is subtle (e.g. "guarded for writers, read via atomic").
//   * Private helpers that expect the caller to hold a lock are named
//     *Locked() and annotated REQUIRES(mu_); the analysis then checks
//     every call site instead of a comment pleading "call with mu
//     held".
//   * Public entry points that take a lock internally are annotated
//     EXCLUDES(mu_) when self-deadlock is a real hazard (re-entrant
//     callbacks, destructor paths).
//   * State protected by something other than a mutex — an atomic
//     ownership token (Campaign::scheduled), a single-threaded phase
//     (recovery) — cannot be expressed to the analysis; such members
//     stay unannotated and the owning comment names the actual
//     protocol.
#ifndef INCENTAG_UTIL_THREAD_ANNOTATIONS_H_
#define INCENTAG_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define INCENTAG_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define INCENTAG_THREAD_ANNOTATION_(x)  // no-op on gcc/msvc
#endif

// A type that models a capability (a lockable thing).
#define CAPABILITY(x) INCENTAG_THREAD_ANNOTATION_(capability(x))

// An RAII type that acquires a capability in its constructor and
// releases it in its destructor.
#define SCOPED_CAPABILITY INCENTAG_THREAD_ANNOTATION_(scoped_lockable)

// Data member readable/writable only while holding the named mutex.
#define GUARDED_BY(x) INCENTAG_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member whose *pointee* is guarded by the named mutex.
#define PT_GUARDED_BY(x) INCENTAG_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function requires the caller to hold the capability (not acquired or
// released by the function). Use on *Locked() helpers.
#define REQUIRES(...) \
  INCENTAG_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// Function requires the capability held shared (reader side).
#define REQUIRES_SHARED(...) \
  INCENTAG_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability and holds it past return.
#define ACQUIRE(...) \
  INCENTAG_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

// Function releases a capability the caller holds.
#define RELEASE(...) \
  INCENTAG_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  INCENTAG_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (the function takes it itself);
// guards against self-deadlock on non-reentrant mutexes.
#define EXCLUDES(...) INCENTAG_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Lock-ordering declarations: this mutex must be acquired before/after
// the named ones.
#define ACQUIRED_BEFORE(...) \
  INCENTAG_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  INCENTAG_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) INCENTAG_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: the function's locking cannot be expressed to the
// analysis. Zero uses in src/service/, src/persist/,
// src/service/scheduler/ is an ISSUE 7 acceptance criterion — if you
// reach for this there, restructure instead.
#define NO_THREAD_SAFETY_ANALYSIS \
  INCENTAG_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // INCENTAG_UTIL_THREAD_ANNOTATIONS_H_
