#include "src/util/fail_point.h"

#if INCENTAG_FAILPOINTS

#include <map>
#include <string>

#include "src/obs/metrics.h"

namespace incentag {
namespace util {

namespace {

// splitmix64: tiny, seedable, and good enough for fault-schedule draws.
// Deterministic across platforms so a torture-test seed replays the
// same schedule everywhere.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// The registry maps name -> point. Points are namespace-scope statics in
// arbitrary TUs, so registration order is unsequenced; a leaked Meyers
// singleton makes the map outlive every registrant (a point's destructor
// during static teardown must still find a live map to erase from).
struct FailPointRegistry {
  Mutex mu;
  std::map<std::string, FailPoint*> points GUARDED_BY(mu);
};

FailPointRegistry& GlobalRegistry() {
  static FailPointRegistry* registry = new FailPointRegistry;
  return *registry;
}

obs::Counter* InjectionsCounter() {
  static obs::Counter* injections = obs::Registry::Default().GetCounter(
      "incentag_fault_injections_total",
      "Faults injected by armed fail points");
  return injections;
}

}  // namespace

FailPoint::FailPoint(const char* name) : name_(name) {
  FailPointRegistry& registry = GlobalRegistry();
  MutexLock lock(&registry.mu);
  registry.points[name_] = this;
}

FailPoint::~FailPoint() {
  FailPointRegistry& registry = GlobalRegistry();
  MutexLock lock(&registry.mu);
  auto it = registry.points.find(name_);
  if (it != registry.points.end() && it->second == this) {
    registry.points.erase(it);
  }
}

void FailPoint::Arm(const Trigger& trigger, const Fault& fault) {
  MutexLock lock(&mu_);
  trigger_ = trigger;
  fault_ = fault;
  hits_ = 0;
  fires_ = 0;
  prng_ = trigger.seed;
  armed_.store(true, std::memory_order_relaxed);
}

void FailPoint::Disarm() {
  MutexLock lock(&mu_);
  armed_.store(false, std::memory_order_relaxed);
}

bool FailPoint::Fire(Fault* out) {
  MutexLock lock(&mu_);
  // Re-check under the lock: the macro's armed() load races Disarm().
  if (!armed_.load(std::memory_order_relaxed)) return false;
  ++hits_;
  if (trigger_.max_fires != 0 && fires_ >= trigger_.max_fires) return false;
  bool fire = false;
  switch (trigger_.mode) {
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kNthHit:
      fire = hits_ == trigger_.n;
      break;
    case Mode::kEveryNth:
      fire = trigger_.n != 0 && hits_ % trigger_.n == 0;
      break;
    case Mode::kProbability: {
      const double draw =
          static_cast<double>(SplitMix64(&prng_) >> 11) * 0x1.0p-53;
      fire = draw < trigger_.probability;
      break;
    }
  }
  if (!fire) return false;
  ++fires_;
  *out = fault_;
  InjectionsCounter()->Increment();
  return true;
}

uint64_t FailPoint::hits() const {
  MutexLock lock(&mu_);
  return hits_;
}

uint64_t FailPoint::fires() const {
  MutexLock lock(&mu_);
  return fires_;
}

FailPoint* FailPoint::Find(const std::string& name) {
  FailPointRegistry& registry = GlobalRegistry();
  MutexLock lock(&registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? nullptr : it->second;
}

std::vector<FailPoint*> FailPoint::All() {
  FailPointRegistry& registry = GlobalRegistry();
  MutexLock lock(&registry.mu);
  std::vector<FailPoint*> out;
  out.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) out.push_back(point);
  return out;
}

void FailPoint::DisarmAll() {
  for (FailPoint* point : All()) point->Disarm();
}

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_FAILPOINTS
