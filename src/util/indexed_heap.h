// IndexedHeap: a binary min-heap over a fixed id space with update-key.
//
// The FP and MU strategies (paper Algorithms 3 and 4) keep every resource in
// a priority queue and re-prioritise the chosen resource after each completed
// post task. A plain std::priority_queue would need lazy deletion (push a
// fresh entry, skip stale ones on pop), growing unboundedly under adversarial
// update patterns. IndexedHeap stores each id at most once and supports
// Update() in O(log n) via a position index, which keeps MU's memory exactly
// O(n) as Table V requires.
//
// Keys are ordered by (priority, id): ties break toward the smaller id so
// that strategy behaviour is deterministic and unit-testable.
#ifndef INCENTAG_UTIL_INDEXED_HEAP_H_
#define INCENTAG_UTIL_INDEXED_HEAP_H_

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace incentag {
namespace util {

// Min-heap keyed by double priority over ids in [0, capacity).
class IndexedHeap {
 public:
  // Ids must be < capacity. The heap starts empty.
  explicit IndexedHeap(size_t capacity)
      : pos_(capacity, kAbsent) {}

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  size_t capacity() const { return pos_.size(); }

  // True if `id` is currently in the heap.
  bool Contains(size_t id) const {
    assert(id < pos_.size());
    return pos_[id] != kAbsent;
  }

  // Priority of `id`; requires Contains(id).
  double PriorityOf(size_t id) const {
    assert(Contains(id));
    return heap_[pos_[id]].priority;
  }

  // Inserts `id` with `priority`; requires !Contains(id).
  void Push(size_t id, double priority) {
    assert(id < pos_.size());
    assert(!Contains(id));
    heap_.push_back(Entry{priority, id});
    pos_[id] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }

  // Changes the priority of `id` (up or down); requires Contains(id).
  void Update(size_t id, double priority) {
    assert(Contains(id));
    size_t i = pos_[id];
    double old = heap_[i].priority;
    heap_[i].priority = priority;
    if (Less(Entry{priority, id}, Entry{old, id})) {
      SiftUp(i);
    } else {
      SiftDown(i);
    }
  }

  // Inserts or updates.
  void PushOrUpdate(size_t id, double priority) {
    if (Contains(id)) {
      Update(id, priority);
    } else {
      Push(id, priority);
    }
  }

  // Id with the minimum (priority, id) pair; requires !empty().
  size_t Top() const {
    assert(!empty());
    return heap_[0].id;
  }

  double TopPriority() const {
    assert(!empty());
    return heap_[0].priority;
  }

  // Removes and returns the top id.
  size_t Pop() {
    assert(!empty());
    size_t id = heap_[0].id;
    RemoveAt(0);
    return id;
  }

  // Removes an arbitrary id; requires Contains(id).
  void Remove(size_t id) {
    assert(Contains(id));
    RemoveAt(pos_[id]);
  }

  // Removes everything (capacity is unchanged).
  void Clear() {
    for (const Entry& e : heap_) pos_[e.id] = kAbsent;
    heap_.clear();
  }

 private:
  struct Entry {
    double priority;
    size_t id;
  };

  static constexpr size_t kAbsent = static_cast<size_t>(-1);

  static bool Less(const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.id < b.id;
  }

  void Place(size_t i, const Entry& e) {
    heap_[i] = e;
    pos_[e.id] = i;
  }

  void SiftUp(size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!Less(e, heap_[parent])) break;
      Place(i, heap_[parent]);
      i = parent;
    }
    Place(i, e);
  }

  void SiftDown(size_t i) {
    Entry e = heap_[i];
    const size_t n = heap_.size();
    for (;;) {
      size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && Less(heap_[child + 1], heap_[child])) ++child;
      if (!Less(heap_[child], e)) break;
      Place(i, heap_[child]);
      i = child;
    }
    Place(i, e);
  }

  void RemoveAt(size_t i) {
    pos_[heap_[i].id] = kAbsent;
    Entry last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
      heap_[i] = last;
      pos_[last.id] = i;
      // The moved entry may need to travel either direction.
      SiftUp(i);
      SiftDown(pos_[last.id]);
    }
  }

  std::vector<Entry> heap_;
  std::vector<size_t> pos_;  // id -> index in heap_, or kAbsent
};

}  // namespace util
}  // namespace incentag

#endif  // INCENTAG_UTIL_INDEXED_HEAP_H_
