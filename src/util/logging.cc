#include "src/util/logging.h"

#include <cstdarg>

namespace incentag {
namespace util {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "-";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warn" || name == "warning") {
    *out = LogLevel::kWarning;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else if (name == "none") {
    *out = LogLevel::kNone;
  } else {
    return false;
  }
  return true;
}

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  // Strip the directory prefix for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] ", LevelTag(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace util
}  // namespace incentag
