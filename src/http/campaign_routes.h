// The /v1 REST surface over CampaignManager (ISSUE 8).
//
// Registers every fleet endpoint on an http::Server:
//
//   POST /v1/campaigns                     submit a campaign
//   GET  /v1/campaigns                     paginated + filtered listing
//   GET  /v1/campaigns/{id}                one campaign's status
//   GET  /v1/campaigns/{id}/tasks          parked assignments (pull side)
//   POST /v1/campaigns/{id}/completions    idempotent batch intake
//   GET  /metrics                          Prometheus exposition
//   GET  /healthz                          liveness probe
//
// All schemas and the StatusCode -> HTTP mapping live in
// src/service/api/dto.h; full reference with curl examples in
// src/http/README.md.
#ifndef INCENTAG_HTTP_CAMPAIGN_ROUTES_H_
#define INCENTAG_HTTP_CAMPAIGN_ROUTES_H_

#include <functional>

#include "src/http/server.h"
#include "src/service/api/dto.h"
#include "src/service/campaign_manager.h"
#include "src/service/external_source.h"
#include "src/util/status.h"

namespace incentag {
namespace http {

// Turns a decoded SubmitCampaignRequest into a full CampaignConfig —
// the host attaches the non-serializable inputs (dataset pointers,
// strategy instance, post stream), exactly the split CampaignFactory
// makes at recovery. Invoked on edge worker threads; must be
// thread-safe.
using CampaignBuilder =
    std::function<util::Result<service::CampaignConfig>(
        const service::api::SubmitCampaignRequest&)>;

struct CampaignRoutesOptions {
  // Required; must outlive the server.
  service::CampaignManager* manager = nullptr;
  // The intake source the manager was built over. Null disables the
  // completions/tasks endpoints (501) — a server can still expose
  // status/listing over an in-process crowd.
  service::ExternalCompletionSource* intake = nullptr;
  // Null disables POST /v1/campaigns (501).
  CampaignBuilder builder;
  // Fleet storage-health tracker (ISSUE 10); normally the same instance
  // the manager was built over. While it reports degraded, the write
  // endpoints (submit, completions) shed load with 503 + Retry-After
  // while every read endpoint keeps serving. Null disables shedding.
  const service::FleetHealth* health = nullptr;
};

void RegisterCampaignRoutes(Server* server, CampaignRoutesOptions options);

}  // namespace http
}  // namespace incentag

#endif  // INCENTAG_HTTP_CAMPAIGN_ROUTES_H_
