#include "src/http/server.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace incentag {
namespace http {
namespace {

// Edge-wide instruments (per-route counters live in campaign_routes.cc
// where the route names are literal). Cached once, lock-free after.
struct EdgeMetrics {
  obs::Counter* accepted;
  obs::Counter* shed;
  obs::Counter* malformed;
  obs::Counter* oversized;
  obs::Histogram* request_seconds;

  static const EdgeMetrics& Get() {
    static const EdgeMetrics m = [] {
      auto& reg = obs::Registry::Default();
      EdgeMetrics out;
      out.accepted = reg.GetCounter("incentag_http_connections_total",
                                    "Connections accepted by the edge");
      out.shed = reg.GetCounter(
          "incentag_http_connections_shed_total",
          "Connections refused with 503 at the concurrency cap");
      out.malformed = reg.GetCounter("incentag_http_rejects_total",
                                     "Requests rejected at the edge",
                                     "reason=\"malformed\"");
      out.oversized = reg.GetCounter("incentag_http_rejects_total",
                                     "Requests rejected at the edge",
                                     "reason=\"oversized\"");
      out.request_seconds = reg.GetHistogram(
          "incentag_http_request_seconds",
          "End-to-end request handling latency",
          obs::LatencyBoundsSeconds());
      return out;
    }();
    return m;
  }
};

Response PlainResponse(int status, std::string body) {
  Response r;
  r.status = status;
  r.content_type = "text/plain; charset=utf-8";
  r.body = std::move(body);
  return r;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { Stop(); }

void Server::Route(std::string method, std::string pattern, Handler handler) {
  RouteEntry entry;
  entry.method = std::move(method);
  entry.handler = std::move(handler);
  std::string_view rest = pattern;
  while (!rest.empty() && rest.front() == '/') rest.remove_prefix(1);
  while (!rest.empty()) {
    size_t slash = rest.find('/');
    entry.segments.emplace_back(
        rest.substr(0, slash == std::string_view::npos ? rest.size() : slash));
    rest = (slash == std::string_view::npos) ? std::string_view()
                                             : rest.substr(slash + 1);
  }
  routes_.push_back(std::move(entry));
}

util::Status Server::Start() {
  if (started_) return util::Status::FailedPrecondition("already started");
  INCENTAG_RETURN_IF_ERROR(
      listener_.Listen(options_.host, options_.port,
                       /*backlog=*/options_.max_connections * 2));
  port_ = listener_.port();
  // +1 worker: the accept loop itself runs on the pool.
  pool_ = std::make_unique<util::ThreadPool>(options_.num_threads + 1);
  started_ = true;
  {
    util::MutexLock lock(&drain_mu_);
    inflight_ = 1;  // The accept loop.
  }
  pool_->Submit([this] { AcceptLoop(); });
  return util::Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  {
    util::MutexLock lock(&drain_mu_);
    while (inflight_ > 0) drained_.Wait(&drain_mu_);
  }
  listener_.Close();
  pool_->Shutdown();
  started_ = false;
  stopping_.store(false, std::memory_order_release);
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    util::Result<util::Socket> accepted = listener_.AcceptWithTimeout(50);
    if (!accepted.ok()) {
      if (accepted.status().code() == util::StatusCode::kDeadlineExceeded) {
        continue;  // Poll tick: re-check the stop flag.
      }
      INCENTAG_LOG_ERROR("http: accept failed: %s",
                         accepted.status().ToString().c_str());
      break;
    }
    EdgeMetrics::Get().accepted->Increment();
    util::Socket socket = std::move(accepted).value();
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      EdgeMetrics::Get().shed->Increment();
      (void)WriteResponse(&socket,
                          PlainResponse(503, "connection limit reached\n"),
                          /*keep_alive=*/false);
      continue;  // Socket closes on scope exit.
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    {
      util::MutexLock lock(&drain_mu_);
      ++inflight_;
    }
    // The pool owns the connection from here. Submit only fails once
    // Shutdown began, which Stop() orders after the drain — but be
    // defensive and undo the accounting if it ever does.
    auto shared = std::make_shared<util::Socket>(std::move(socket));
    if (!pool_->Submit([this, shared] {
          ServeConnection(std::move(*shared));
        })) {
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      util::MutexLock lock(&drain_mu_);
      if (--inflight_ == 0) drained_.NotifyAll();
    }
  }
  util::MutexLock lock(&drain_mu_);
  if (--inflight_ == 0) drained_.NotifyAll();
}

void Server::ServeConnection(util::Socket socket) {
  // Recv in short ticks rather than one blocking recv_timeout_ms wait:
  // an idle keep-alive connection re-checks stopping_ every tick, so
  // Stop() drains in ~one tick instead of the full idle timeout. The
  // reader buffers across ticks, so a timeout mid-request just resumes.
  constexpr int kRecvTickMs = 100;
  const int tick_ms = options_.recv_timeout_ms < kRecvTickMs
                          ? options_.recv_timeout_ms
                          : kRecvTickMs;
  (void)socket.SetRecvTimeout(tick_ms);
  RequestReader reader(&socket, options_.limits);
  Request request;
  int idle_ms = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    ReadResult read = reader.Next(&request);
    if (read.outcome == ReadOutcome::kTimeout) {
      idle_ms += tick_ms;
      if (idle_ms >= options_.recv_timeout_ms) break;  // Idled out.
      continue;
    }
    idle_ms = 0;
    if (read.outcome == ReadOutcome::kClosed ||
        read.outcome == ReadOutcome::kTransport) {
      break;
    }
    if (read.outcome == ReadOutcome::kTooLarge) {
      EdgeMetrics::Get().oversized->Increment();
      (void)WriteResponse(&socket, PlainResponse(413, read.error + "\n"),
                          /*keep_alive=*/false);
      break;
    }
    if (read.outcome == ReadOutcome::kMalformed) {
      EdgeMetrics::Get().malformed->Increment();
      (void)WriteResponse(&socket, PlainResponse(400, read.error + "\n"),
                          /*keep_alive=*/false);
      break;
    }
    Response response;
    {
      obs::ScopedTimer timer(EdgeMetrics::Get().request_seconds);
      response = Dispatch(request);
    }
    if (!WriteResponse(&socket, response, request.keep_alive).ok()) break;
    if (!request.keep_alive) break;
  }
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  util::MutexLock lock(&drain_mu_);
  if (--inflight_ == 0) drained_.NotifyAll();
}

Response Server::Dispatch(const Request& request) {
  bool path_matched = false;
  for (const RouteEntry& entry : routes_) {
    PathArgs args;
    if (!MatchPath(entry, request.path, &args)) continue;
    path_matched = true;
    if (entry.method != request.method) continue;
    return entry.handler(request, args);
  }
  if (path_matched) {
    return PlainResponse(405, "method not allowed\n");
  }
  return PlainResponse(404, "no such route\n");
}

bool Server::MatchPath(const RouteEntry& entry, std::string_view path,
                       PathArgs* args) {
  while (!path.empty() && path.front() == '/') path.remove_prefix(1);
  // Ignore exactly one trailing slash ("/v1/campaigns/" == "/v1/campaigns").
  if (!path.empty() && path.back() == '/') path.remove_suffix(1);
  size_t i = 0;
  while (!path.empty() || i < entry.segments.size()) {
    if (path.empty() || i >= entry.segments.size()) return false;
    size_t slash = path.find('/');
    std::string_view seg =
        (slash == std::string_view::npos) ? path : path.substr(0, slash);
    path = (slash == std::string_view::npos) ? std::string_view()
                                             : path.substr(slash + 1);
    const std::string& want = entry.segments[i++];
    if (want.size() >= 2 && want.front() == '{' && want.back() == '}') {
      if (seg.empty()) return false;
      args->params.emplace_back(want.substr(1, want.size() - 2),
                                std::string(seg));
    } else if (seg != want) {
      return false;
    }
  }
  return true;
}

}  // namespace http
}  // namespace incentag
