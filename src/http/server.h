// A thread-per-connection HTTP/1.1 server over util::ThreadPool.
//
// Connections are cheap here: the fleet edge expects a bounded set of
// long-lived keep-alive connections (tagger gateways, scrapers, load
// harnesses), not a million ephemeral ones — so each accepted socket
// pins one pool worker until it closes or idles out, and the accept
// loop sheds load with 503 once `max_connections` workers are busy.
// That keeps the hot path free of readiness plumbing while the recv
// timeout bounds how long an idle connection can hold its worker.
//
// Routing: exact-segment patterns with `{param}` placeholders
// ("/v1/campaigns/{id}/completions"). First match wins in registration
// order; a path that matches no pattern gets 404, a pattern that
// matches with the wrong method gets 405.
#ifndef INCENTAG_HTTP_SERVER_H_
#define INCENTAG_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/http/http.h"
#include "src/util/mutex.h"
#include "src/util/socket.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace incentag {
namespace http {

// Path parameters captured by `{param}` placeholders, in pattern order.
struct PathArgs {
  std::vector<std::pair<std::string, std::string>> params;

  const std::string* Get(std::string_view name) const {
    for (const auto& p : params) {
      if (p.first == name) return &p.second;
    }
    return nullptr;
  }
};

using Handler = std::function<Response(const Request&, const PathArgs&)>;

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; Server::port() reports the bound one.
  int num_threads = 8;
  // Above this many concurrent connections the accept loop answers 503
  // inline and closes — backpressure, not an unbounded queue.
  int max_connections = 64;
  // Idle keep-alive connections are dropped after this long in total.
  // The worker recvs in short ticks under the hood, so Stop() never
  // waits out this budget on an idle connection.
  int recv_timeout_ms = 15000;
  ReadLimits limits;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  // Stops if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registration is not thread-safe; finish before Start().
  void Route(std::string method, std::string pattern, Handler handler);

  // Binds, then serves on background threads until Stop().
  util::Status Start();
  // Idempotent. Blocks until the accept loop and all workers drained.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  struct RouteEntry {
    std::string method;
    std::vector<std::string> segments;  // "{param}" segments capture.
    Handler handler;
  };

  void AcceptLoop();
  void ServeConnection(util::Socket socket);
  Response Dispatch(const Request& request);

  // True and captures args iff `path` matches `entry`'s segments.
  static bool MatchPath(const RouteEntry& entry, std::string_view path,
                        PathArgs* args);

  ServerOptions options_;
  std::vector<RouteEntry> routes_;
  util::ListenSocket listener_;
  uint16_t port_ = 0;
  std::unique_ptr<util::ThreadPool> pool_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};
  bool started_ = false;

  util::Mutex drain_mu_;
  util::CondVar drained_;
  // Accept loop + live connections; Stop() waits for it to hit zero.
  int inflight_ GUARDED_BY(drain_mu_) = 0;
};

}  // namespace http
}  // namespace incentag

#endif  // INCENTAG_HTTP_SERVER_H_
