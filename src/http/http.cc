#include "src/http/http.h"

#include <cstdint>

namespace incentag {
namespace http {
namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";

bool IsDigitChar(char c) { return c >= '0' && c <= '9'; }

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

void ParseQueryString(std::string_view qs, Request* out) {
  while (!qs.empty()) {
    size_t amp = qs.find('&');
    std::string_view pair =
        (amp == std::string_view::npos) ? qs : qs.substr(0, amp);
    qs = (amp == std::string_view::npos) ? std::string_view()
                                         : qs.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    std::string_view key =
        (eq == std::string_view::npos) ? pair : pair.substr(0, eq);
    std::string_view value =
        (eq == std::string_view::npos) ? std::string_view()
                                       : pair.substr(eq + 1);
    out->query.emplace_back(PercentDecode(key), PercentDecode(value));
  }
}

// Parses the head (request line + headers) in `head`, which excludes the
// terminating blank line. Returns false on malformed input.
bool ParseHead(std::string_view head, Request* out, std::string* error) {
  size_t line_end = head.find(kCrlf);
  std::string_view request_line =
      (line_end == std::string_view::npos) ? head : head.substr(0, line_end);
  std::string_view rest = (line_end == std::string_view::npos)
                              ? std::string_view()
                              : head.substr(line_end + kCrlf.size());

  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      (sp1 == std::string_view::npos) ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    *error = "bad request line";
    return false;
  }
  out->method = std::string(request_line.substr(0, sp1));
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  if (out->method.empty() || target.empty() || target[0] != '/') {
    *error = "bad request line";
    return false;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    *error = "unsupported HTTP version";
    return false;
  }
  // HTTP/1.0 defaults to close; 1.1 to keep-alive. The Connection
  // header below can override either way.
  out->keep_alive = (version == "HTTP/1.1");

  size_t frag = target.find('#');
  if (frag != std::string_view::npos) target = target.substr(0, frag);
  size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) {
    out->path = PercentDecode(target);
  } else {
    out->path = PercentDecode(target.substr(0, qmark));
    ParseQueryString(target.substr(qmark + 1), out);
  }

  while (!rest.empty()) {
    size_t end = rest.find(kCrlf);
    std::string_view line =
        (end == std::string_view::npos) ? rest : rest.substr(0, end);
    rest = (end == std::string_view::npos) ? std::string_view()
                                           : rest.substr(end + kCrlf.size());
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      *error = "bad header line";
      return false;
    }
    std::string name = ToLowerAscii(Trim(line.substr(0, colon)));
    out->headers.emplace_back(std::move(name),
                              std::string(Trim(line.substr(colon + 1))));
  }
  return true;
}

}  // namespace

const std::string* Request::Header(std::string_view name) const {
  for (const auto& h : headers) {
    if (h.first == name) return &h.second;
  }
  return nullptr;
}

const std::string* Request::QueryParam(std::string_view name) const {
  for (const auto& q : query) {
    if (q.first == name) return &q.second;
  }
  return nullptr;
}

std::string PercentDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '+') {
      out.push_back(' ');
      continue;
    }
    if (c == '%' && i + 2 < in.size()) {
      int hi = HexNibble(in[i + 1]);
      int lo = HexNibble(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(c);
  }
  return out;
}

ReadResult RequestReader::Fill() {
  char chunk[8192];
  util::Result<size_t> n = socket_->ReadSome(chunk, sizeof(chunk));
  if (!n.ok()) {
    if (n.status().code() == util::StatusCode::kDeadlineExceeded) {
      return {ReadOutcome::kTimeout, ""};
    }
    return {ReadOutcome::kTransport, n.status().ToString()};
  }
  if (n.value() == 0) return {ReadOutcome::kClosed, ""};
  buf_.append(chunk, n.value());
  return {ReadOutcome::kOk, ""};
}

ReadResult RequestReader::Next(Request* out) {
  *out = Request();
  // Phase 1: accumulate until the blank line ending the head.
  size_t head_end;
  while ((head_end = buf_.find(kHeadEnd)) == std::string::npos) {
    if (buf_.size() > limits_.max_head_bytes) {
      return {ReadOutcome::kTooLarge, "request head too large"};
    }
    ReadResult r = Fill();
    if (r.outcome != ReadOutcome::kOk) {
      // Bytes of a partial request make EOF/timeouts malformed/transport
      // rather than a clean end-of-stream.
      if (!buf_.empty() && r.outcome == ReadOutcome::kClosed) {
        return {ReadOutcome::kMalformed, "connection closed mid-request"};
      }
      return r;
    }
  }
  if (head_end > limits_.max_head_bytes) {
    return {ReadOutcome::kTooLarge, "request head too large"};
  }

  std::string error;
  if (!ParseHead(std::string_view(buf_).substr(0, head_end), out, &error)) {
    return {ReadOutcome::kMalformed, error};
  }

  // Phase 2: the body. Content-Length only; chunked is out of scope.
  if (out->Header("transfer-encoding") != nullptr) {
    return {ReadOutcome::kMalformed, "transfer-encoding not supported"};
  }
  size_t body_len = 0;
  if (const std::string* cl = out->Header("content-length")) {
    uint64_t parsed = 0;
    std::string_view text = *cl;
    if (text.empty()) return {ReadOutcome::kMalformed, "bad content-length"};
    for (char c : text) {
      if (!IsDigitChar(c)) {
        return {ReadOutcome::kMalformed, "bad content-length"};
      }
      if (parsed > (UINT64_MAX - 9) / 10) {
        return {ReadOutcome::kTooLarge, "content-length overflow"};
      }
      parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
    }
    if (parsed > limits_.max_body_bytes) {
      return {ReadOutcome::kTooLarge, "request body too large"};
    }
    body_len = static_cast<size_t>(parsed);
  }

  const size_t total = head_end + kHeadEnd.size() + body_len;
  while (buf_.size() < total) {
    ReadResult r = Fill();
    if (r.outcome != ReadOutcome::kOk) {
      if (r.outcome == ReadOutcome::kClosed) {
        return {ReadOutcome::kMalformed, "connection closed mid-body"};
      }
      return r;
    }
  }
  out->body = buf_.substr(head_end + kHeadEnd.size(), body_len);

  if (const std::string* conn = out->Header("connection")) {
    std::string v = ToLowerAscii(*conn);
    if (v == "close") out->keep_alive = false;
    if (v == "keep-alive") out->keep_alive = true;
  }

  // Retain pipelined bytes for the next call.
  buf_.erase(0, total);
  return {ReadOutcome::kOk, ""};
}

std::string_view StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 202:
      return "Accepted";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 412:
      return "Precondition Failed";
    case 413:
      return "Payload Too Large";
    case 416:
      return "Range Not Satisfiable";
    case 422:
      return "Unprocessable Entity";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

util::Status WriteResponse(util::Socket* socket, const Response& response,
                           bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out.append("HTTP/1.1 ");
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(StatusText(response.status));
  out.append(kCrlf);
  if (!response.content_type.empty()) {
    out.append("Content-Type: ");
    out.append(response.content_type);
    out.append(kCrlf);
  }
  out.append("Content-Length: ");
  out.append(std::to_string(response.body.size()));
  out.append(kCrlf);
  out.append(keep_alive ? "Connection: keep-alive" : "Connection: close");
  out.append(kCrlf);
  for (const auto& h : response.headers) {
    out.append(h.first);
    out.append(": ");
    out.append(h.second);
    out.append(kCrlf);
  }
  out.append(kCrlf);
  out.append(response.body);
  return socket->WriteAll(out);
}

}  // namespace http
}  // namespace incentag
