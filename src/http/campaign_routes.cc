#include "src/http/campaign_routes.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/service/fleet_health.h"
#include "src/util/json.h"
#include "src/util/text.h"

namespace incentag {
namespace http {
namespace {

namespace api = service::api;
using util::json::Value;

// Per-endpoint instruments. Names and labels are literals at every
// registration (tools/lint_metrics.py reads them), so each route gets
// its own static-cached struct rather than a loop over route names.
struct RouteMetrics {
  obs::Counter* requests;
  obs::Histogram* latency;
};

Response JsonResponse(int status, const Value& body) {
  Response r;
  r.status = status;
  r.body = body.Dump();
  r.body.push_back('\n');
  return r;
}

Response ErrorResponse(const util::Status& status) {
  return JsonResponse(api::HttpStatusFor(status.code()),
                      api::EncodeError(status));
}

obs::Counter* InvalidBodyRejects() {
  static obs::Counter* rejects = obs::Registry::Default().GetCounter(
      "incentag_http_rejects_total", "Requests rejected at the edge",
      "reason=\"invalid_body\"");
  return rejects;
}

obs::Counter* UnknownCampaignRejects() {
  static obs::Counter* rejects = obs::Registry::Default().GetCounter(
      "incentag_http_rejects_total", "Requests rejected at the edge",
      "reason=\"unknown_campaign\"");
  return rejects;
}

obs::Counter* DegradedRejects() {
  static obs::Counter* rejects = obs::Registry::Default().GetCounter(
      "incentag_http_rejects_total", "Requests rejected at the edge",
      "reason=\"degraded\"");
  return rejects;
}

// 503 + Retry-After when the fleet is shedding writes (ISSUE 10); null
// when the request should proceed. Only the write endpoints consult
// this — reads keep serving so operators can watch the episode.
std::optional<Response> MaybeShedWrite(const CampaignRoutesOptions& options) {
  if (options.health == nullptr || !options.health->degraded()) {
    return std::nullopt;
  }
  DegradedRejects()->Increment();
  Response r = ErrorResponse(util::Status::ResourceExhausted(
      "fleet is in storage degraded mode; retry later"));
  r.status = 503;
  r.headers.emplace_back(
      "Retry-After", std::to_string(options.health->retry_after_seconds()));
  return r;
}

// {id} as a CampaignId; 0 is never a valid id.
util::Result<service::CampaignId> ParseId(const PathArgs& args) {
  const std::string* raw = args.Get("id");
  if (raw == nullptr) {
    return util::Status::Internal("route pattern lost {id}");
  }
  util::Result<uint64_t> id = util::ParseUint64(*raw);
  if (!id.ok() || id.value() == 0) {
    return util::Status::InvalidArgument("campaign id must be a positive " +
                                         std::string("integer"));
  }
  return id.value();
}

util::Result<api::SubmitCampaignRequest> DecodeSubmitBody(
    const Request& request) {
  util::Result<Value> body = util::json::Parse(request.body);
  if (!body.ok()) return body.status();
  return api::DecodeSubmitCampaignRequest(body.value());
}

Response HandleSubmit(const CampaignRoutesOptions& options,
                      const Request& request) {
  static const RouteMetrics metrics = {
      obs::Registry::Default().GetCounter("incentag_http_requests_total",
                                          "Requests served per route",
                                          "route=\"submit\""),
      obs::Registry::Default().GetHistogram(
          "incentag_http_route_seconds",
          "Request handling latency per route", obs::LatencyBoundsSeconds(),
          "route=\"submit\"")};
  metrics.requests->Increment();
  obs::ScopedTimer timer(metrics.latency);
  if (std::optional<Response> shed = MaybeShedWrite(options)) {
    return *std::move(shed);
  }
  if (!options.builder) {
    return ErrorResponse(util::Status::Unimplemented(
        "this server does not accept campaign submissions"));
  }
  util::Result<api::SubmitCampaignRequest> decoded =
      DecodeSubmitBody(request);
  if (!decoded.ok()) {
    InvalidBodyRejects()->Increment();
    return ErrorResponse(decoded.status());
  }
  util::Result<service::CampaignConfig> config =
      options.builder(decoded.value());
  if (!config.ok()) return ErrorResponse(config.status());
  util::Result<service::CampaignId> id =
      options.manager->Submit(std::move(config).value());
  if (!id.ok()) return ErrorResponse(id.status());
  Value out = Value::Object();
  out.Set("id", Value::Int(static_cast<int64_t>(id.value())));
  out.Set("state",
          Value::Str(std::string(api::CampaignStateName(
              service::CampaignState::kRunning))));
  return JsonResponse(201, out);
}

Response HandleList(const CampaignRoutesOptions& options,
                    const Request& request) {
  static const RouteMetrics metrics = {
      obs::Registry::Default().GetCounter("incentag_http_requests_total",
                                          "Requests served per route",
                                          "route=\"list\""),
      obs::Registry::Default().GetHistogram(
          "incentag_http_route_seconds",
          "Request handling latency per route", obs::LatencyBoundsSeconds(),
          "route=\"list\"")};
  metrics.requests->Increment();
  obs::ScopedTimer timer(metrics.latency);
  service::ListQuery query;
  if (const std::string* offset = request.QueryParam("offset")) {
    util::Result<uint64_t> v = util::ParseUint64(*offset);
    if (!v.ok()) {
      return ErrorResponse(
          util::Status::InvalidArgument("offset must be a non-negative "
                                        "integer"));
    }
    query.offset = static_cast<size_t>(v.value());
  }
  if (const std::string* limit = request.QueryParam("limit")) {
    util::Result<uint64_t> v = util::ParseUint64(*limit);
    if (!v.ok() || v.value() > service::ListQuery::kMaxLimit) {
      return ErrorResponse(util::Status::InvalidArgument(
          "limit must be an integer in [0, " +
          std::to_string(service::ListQuery::kMaxLimit) + "]"));
    }
    query.limit = static_cast<size_t>(v.value());
  }
  if (const std::string* state = request.QueryParam("state")) {
    service::CampaignState parsed;
    if (!api::ParseCampaignState(*state, &parsed)) {
      return ErrorResponse(util::Status::InvalidArgument(
          "state must be one of running/done/cancelled/failed/quarantined"));
    }
    query.state = parsed;
  }
  if (const std::string* search = request.QueryParam("search")) {
    query.search = *search;
  }
  return JsonResponse(200,
                      api::EncodeCampaignPage(options.manager->List(query)));
}

Response HandleStatus(const CampaignRoutesOptions& options,
                      const PathArgs& args) {
  static const RouteMetrics metrics = {
      obs::Registry::Default().GetCounter("incentag_http_requests_total",
                                          "Requests served per route",
                                          "route=\"status\""),
      obs::Registry::Default().GetHistogram(
          "incentag_http_route_seconds",
          "Request handling latency per route", obs::LatencyBoundsSeconds(),
          "route=\"status\"")};
  metrics.requests->Increment();
  obs::ScopedTimer timer(metrics.latency);
  util::Result<service::CampaignId> id = ParseId(args);
  if (!id.ok()) return ErrorResponse(id.status());
  util::Result<service::CampaignStatus> status =
      options.manager->Status(id.value());
  if (!status.ok()) {
    UnknownCampaignRejects()->Increment();
    return ErrorResponse(status.status());
  }
  return JsonResponse(200, api::EncodeCampaignStatus(status.value()));
}

Response HandleTasks(const CampaignRoutesOptions& options,
                     const Request& request, const PathArgs& args) {
  static const RouteMetrics metrics = {
      obs::Registry::Default().GetCounter("incentag_http_requests_total",
                                          "Requests served per route",
                                          "route=\"tasks\""),
      obs::Registry::Default().GetHistogram(
          "incentag_http_route_seconds",
          "Request handling latency per route", obs::LatencyBoundsSeconds(),
          "route=\"tasks\"")};
  metrics.requests->Increment();
  obs::ScopedTimer timer(metrics.latency);
  if (options.intake == nullptr) {
    return ErrorResponse(util::Status::Unimplemented(
        "this server has no external completion intake"));
  }
  util::Result<service::CampaignId> id = ParseId(args);
  if (!id.ok()) return ErrorResponse(id.status());
  if (!options.manager->Status(id.value()).ok()) {
    UnknownCampaignRejects()->Increment();
    return ErrorResponse(util::Status::NotFound("no such campaign"));
  }
  size_t max = 256;
  if (const std::string* raw = request.QueryParam("max")) {
    util::Result<uint64_t> v = util::ParseUint64(*raw);
    if (!v.ok() || v.value() > 65536) {
      return ErrorResponse(util::Status::InvalidArgument(
          "max must be an integer in [0, 65536]"));
    }
    max = static_cast<size_t>(v.value());
  }
  Value out = Value::Object();
  Value tasks = Value::Array();
  for (const service::TaskHandle& t :
       options.intake->Pending(id.value(), max)) {
    Value task = Value::Object();
    task.Set("seq", Value::Int(static_cast<int64_t>(t.seq)));
    task.Set("resource", Value::Int(static_cast<int64_t>(t.resource)));
    tasks.Append(std::move(task));
  }
  out.Set("tasks", std::move(tasks));
  return JsonResponse(200, out);
}

Response HandleCompletions(const CampaignRoutesOptions& options,
                           const Request& request, const PathArgs& args) {
  static const RouteMetrics metrics = {
      obs::Registry::Default().GetCounter("incentag_http_requests_total",
                                          "Requests served per route",
                                          "route=\"completions\""),
      obs::Registry::Default().GetHistogram(
          "incentag_http_route_seconds",
          "Request handling latency per route", obs::LatencyBoundsSeconds(),
          "route=\"completions\"")};
  metrics.requests->Increment();
  obs::ScopedTimer timer(metrics.latency);
  if (std::optional<Response> shed = MaybeShedWrite(options)) {
    return *std::move(shed);
  }
  if (options.intake == nullptr) {
    return ErrorResponse(util::Status::Unimplemented(
        "this server has no external completion intake"));
  }
  util::Result<service::CampaignId> id = ParseId(args);
  if (!id.ok()) return ErrorResponse(id.status());
  // Snapshot before decode: tasks_completed is the journaled applied
  // floor for the dedup hint below, and the existence check makes an
  // unknown campaign a 404 rather than a batch full of "unknown" seqs.
  util::Result<service::CampaignStatus> status =
      options.manager->Status(id.value());
  if (!status.ok()) {
    UnknownCampaignRejects()->Increment();
    return ErrorResponse(status.status());
  }
  util::Result<Value> body = util::json::Parse(request.body);
  if (!body.ok()) {
    InvalidBodyRejects()->Increment();
    return ErrorResponse(body.status());
  }
  util::Result<api::CompletionBatchRequest> batch =
      api::DecodeCompletionBatchRequest(body.value());
  if (!batch.ok()) {
    InvalidBodyRejects()->Increment();
    return ErrorResponse(batch.status());
  }
  service::IntakeResult result = options.intake->Complete(
      id.value(), batch.value().completions,
      static_cast<uint64_t>(status.value().tasks_completed));
  return JsonResponse(200, api::EncodeIntakeResult(result));
}

Response HandleMetrics() {
  static const RouteMetrics metrics = {
      obs::Registry::Default().GetCounter("incentag_http_requests_total",
                                          "Requests served per route",
                                          "route=\"metrics\""),
      obs::Registry::Default().GetHistogram(
          "incentag_http_route_seconds",
          "Request handling latency per route", obs::LatencyBoundsSeconds(),
          "route=\"metrics\"")};
  metrics.requests->Increment();
  obs::ScopedTimer timer(metrics.latency);
  Response r;
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = obs::Registry::Default().Snapshot().RenderPrometheus();
  return r;
}

}  // namespace

void RegisterCampaignRoutes(Server* server, CampaignRoutesOptions options) {
  // The options struct is tiny and immutable after registration; each
  // handler shares one heap copy.
  auto shared = std::make_shared<CampaignRoutesOptions>(std::move(options));
  server->Route("POST", "/v1/campaigns",
                [shared](const Request& request, const PathArgs&) {
                  return HandleSubmit(*shared, request);
                });
  server->Route("GET", "/v1/campaigns",
                [shared](const Request& request, const PathArgs&) {
                  return HandleList(*shared, request);
                });
  server->Route("GET", "/v1/campaigns/{id}",
                [shared](const Request&, const PathArgs& args) {
                  return HandleStatus(*shared, args);
                });
  server->Route("GET", "/v1/campaigns/{id}/tasks",
                [shared](const Request& request, const PathArgs& args) {
                  return HandleTasks(*shared, request, args);
                });
  server->Route("POST", "/v1/campaigns/{id}/completions",
                [shared](const Request& request, const PathArgs& args) {
                  return HandleCompletions(*shared, request, args);
                });
  server->Route("GET", "/metrics",
                [](const Request&, const PathArgs&) {
                  return HandleMetrics();
                });
  server->Route("GET", "/healthz", [](const Request&, const PathArgs&) {
    Response r;
    r.content_type = "text/plain; charset=utf-8";
    r.body = "ok\n";
    return r;
  });
}

}  // namespace http
}  // namespace incentag
