#include "src/http/client.h"

#include <cstdint>

namespace incentag {
namespace http {
namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace

const std::string* ClientResponse::Header(std::string_view name) const {
  for (const auto& h : headers) {
    if (h.first == name) return &h.second;
  }
  return nullptr;
}

util::Status Client::Connect(const std::string& host, uint16_t port) {
  host_ = host;
  port_ = port;
  util::Result<util::Socket> s = util::ConnectTcp(host, port);
  if (!s.ok()) return s.status();
  socket_ = std::move(s).value();
  buf_.clear();
  return util::Status::OK();
}

void Client::Disconnect() {
  socket_.Close();
  buf_.clear();
}

util::Result<ClientResponse> Client::Request(std::string_view method,
                                             std::string_view target,
                                             std::string_view body) {
  if (!connected()) {
    return util::Status::FailedPrecondition("client not connected");
  }
  util::Result<ClientResponse> r = RoundTrip(method, target, body);
  if (r.ok()) return r;
  // The server may have idled out this keep-alive connection; one
  // reconnect retry is safe for our idempotent API.
  INCENTAG_RETURN_IF_ERROR(Connect(host_, port_));
  return RoundTrip(method, target, body);
}

util::Result<ClientResponse> Client::RoundTrip(std::string_view method,
                                               std::string_view target,
                                               std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out.append(method);
  out.push_back(' ');
  out.append(target);
  out.append(" HTTP/1.1");
  out.append(kCrlf);
  out.append("Host: ");
  out.append(host_);
  out.append(kCrlf);
  if (!body.empty()) {
    out.append("Content-Type: application/json");
    out.append(kCrlf);
  }
  out.append("Content-Length: ");
  out.append(std::to_string(body.size()));
  out.append(kCrlf);
  out.append(kCrlf);
  out.append(body);
  INCENTAG_RETURN_IF_ERROR(socket_.WriteAll(out));
  return ReadResponse();
}

util::Result<ClientResponse> Client::ReadResponse() {
  size_t head_end;
  while ((head_end = buf_.find(kHeadEnd)) == std::string::npos) {
    char chunk[8192];
    util::Result<size_t> n = socket_.ReadSome(chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return util::Status::IoError("connection closed before response");
    }
    buf_.append(chunk, n.value());
  }

  ClientResponse response;
  std::string_view head = std::string_view(buf_).substr(0, head_end);
  size_t line_end = head.find(kCrlf);
  std::string_view status_line =
      (line_end == std::string_view::npos) ? head : head.substr(0, line_end);
  // "HTTP/1.1 NNN Reason"
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || status_line.size() < sp + 4) {
    return util::Status::Corruption("bad status line");
  }
  int status = 0;
  for (int i = 1; i <= 3; ++i) {
    char c = status_line[sp + static_cast<size_t>(i)];
    if (c < '0' || c > '9') {
      return util::Status::Corruption("bad status code");
    }
    status = status * 10 + (c - '0');
  }
  response.status = status;

  std::string_view rest = (line_end == std::string_view::npos)
                              ? std::string_view()
                              : head.substr(line_end + kCrlf.size());
  size_t content_length = 0;
  while (!rest.empty()) {
    size_t end = rest.find(kCrlf);
    std::string_view line =
        (end == std::string_view::npos) ? rest : rest.substr(0, end);
    rest = (end == std::string_view::npos) ? std::string_view()
                                           : rest.substr(end + kCrlf.size());
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = ToLowerAscii(line.substr(0, colon));
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    if (name == "content-length") {
      content_length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return util::Status::Corruption("bad content-length");
        }
        content_length = content_length * 10 + static_cast<size_t>(c - '0');
      }
    }
    response.headers.emplace_back(std::move(name), std::string(value));
  }

  const size_t total = head_end + kHeadEnd.size() + content_length;
  while (buf_.size() < total) {
    char chunk[8192];
    util::Result<size_t> n = socket_.ReadSome(chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return util::Status::IoError("connection closed mid-body");
    }
    buf_.append(chunk, n.value());
  }
  response.body = buf_.substr(head_end + kHeadEnd.size(), content_length);
  buf_.erase(0, total);
  return response;
}

}  // namespace http
}  // namespace incentag
