#include "src/http/client.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace incentag {
namespace http {
namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Retry-After as whole seconds (the only form our server emits); -1 for
// absent/unparseable — including the HTTP-date form, which falls back
// to the computed backoff rather than a guessed clock delta.
int64_t ParseRetryAfterMs(const ClientResponse& response) {
  const std::string* value = response.Header("retry-after");
  if (value == nullptr || value->empty()) return -1;
  int64_t seconds = 0;
  for (char c : *value) {
    if (c < '0' || c > '9') return -1;
    seconds = seconds * 10 + (c - '0');
    if (seconds > 1'000'000) break;  // clamped later anyway
  }
  return seconds * 1000;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace

const std::string* ClientResponse::Header(std::string_view name) const {
  for (const auto& h : headers) {
    if (h.first == name) return &h.second;
  }
  return nullptr;
}

util::Status Client::Connect(const std::string& host, uint16_t port) {
  host_ = host;
  port_ = port;
  util::Result<util::Socket> s = util::ConnectTcp(host, port);
  if (!s.ok()) return s.status();
  socket_ = std::move(s).value();
  buf_.clear();
  return util::Status::OK();
}

void Client::Disconnect() {
  socket_.Close();
  buf_.clear();
}

// Backoff for the gap before the attempt'th retry: exponential rung
// with full jitter over its upper half (deterministic given
// jitter_seed), overridden by the server's capped Retry-After when one
// was advertised.
int64_t Client::NextDelayMs(int attempt, int64_t retry_after_ms) {
  if (retry_after_ms >= 0) {
    return std::min<int64_t>(retry_after_ms, retry_.max_retry_after_ms);
  }
  double rung = static_cast<double>(retry_.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) rung *= retry_.multiplier;
  const int64_t capped = std::min<int64_t>(
      retry_.max_backoff_ms, static_cast<int64_t>(rung));
  if (capped <= 1) return capped < 0 ? 0 : capped;
  if (jitter_state_ == 0) jitter_state_ = retry_.jitter_seed | 1;
  const int64_t half = capped / 2;
  return half + static_cast<int64_t>(SplitMix64(&jitter_state_) %
                                     static_cast<uint64_t>(capped - half + 1));
}

util::Result<ClientResponse> Client::Request(std::string_view method,
                                             std::string_view target,
                                             std::string_view body) {
  if (!connected()) {
    return util::Status::FailedPrecondition("client not connected");
  }
  const int max_attempts = std::max(1, retry_.max_attempts);
  util::Result<ClientResponse> r = RoundTrip(method, target, body);
  for (int attempt = 1; attempt < max_attempts; ++attempt) {
    const bool shed =
        r.ok() && r.value().status == 503 && retry_.retry_on_503;
    if (r.ok() && !shed) return r;
    const int64_t delay_ms =
        NextDelayMs(attempt, shed ? ParseRetryAfterMs(r.value()) : -1);
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    if (!r.ok()) {
      // Transport error: the server idled out the keep-alive connection,
      // or the write/read died mid-flight. Rebuild the connection; safe
      // to resend because the whole API is idempotent. A failed
      // reconnect still counts as this attempt's outcome.
      util::Status reconnected = Connect(host_, port_);
      if (!reconnected.ok()) {
        r = reconnected;
        continue;
      }
    }
    r = RoundTrip(method, target, body);
  }
  return r;
}

util::Result<ClientResponse> Client::RoundTrip(std::string_view method,
                                               std::string_view target,
                                               std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out.append(method);
  out.push_back(' ');
  out.append(target);
  out.append(" HTTP/1.1");
  out.append(kCrlf);
  out.append("Host: ");
  out.append(host_);
  out.append(kCrlf);
  if (!body.empty()) {
    out.append("Content-Type: application/json");
    out.append(kCrlf);
  }
  out.append("Content-Length: ");
  out.append(std::to_string(body.size()));
  out.append(kCrlf);
  out.append(kCrlf);
  out.append(body);
  INCENTAG_RETURN_IF_ERROR(socket_.WriteAll(out));
  return ReadResponse();
}

util::Result<ClientResponse> Client::ReadResponse() {
  size_t head_end;
  while ((head_end = buf_.find(kHeadEnd)) == std::string::npos) {
    char chunk[8192];
    util::Result<size_t> n = socket_.ReadSome(chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return util::Status::IoError("connection closed before response");
    }
    buf_.append(chunk, n.value());
  }

  ClientResponse response;
  std::string_view head = std::string_view(buf_).substr(0, head_end);
  size_t line_end = head.find(kCrlf);
  std::string_view status_line =
      (line_end == std::string_view::npos) ? head : head.substr(0, line_end);
  // "HTTP/1.1 NNN Reason"
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || status_line.size() < sp + 4) {
    return util::Status::Corruption("bad status line");
  }
  int status = 0;
  for (int i = 1; i <= 3; ++i) {
    char c = status_line[sp + static_cast<size_t>(i)];
    if (c < '0' || c > '9') {
      return util::Status::Corruption("bad status code");
    }
    status = status * 10 + (c - '0');
  }
  response.status = status;

  std::string_view rest = (line_end == std::string_view::npos)
                              ? std::string_view()
                              : head.substr(line_end + kCrlf.size());
  size_t content_length = 0;
  while (!rest.empty()) {
    size_t end = rest.find(kCrlf);
    std::string_view line =
        (end == std::string_view::npos) ? rest : rest.substr(0, end);
    rest = (end == std::string_view::npos) ? std::string_view()
                                           : rest.substr(end + kCrlf.size());
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = ToLowerAscii(line.substr(0, colon));
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    if (name == "content-length") {
      content_length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return util::Status::Corruption("bad content-length");
        }
        content_length = content_length * 10 + static_cast<size_t>(c - '0');
      }
    }
    response.headers.emplace_back(std::move(name), std::string(value));
  }

  const size_t total = head_end + kHeadEnd.size() + content_length;
  while (buf_.size() < total) {
    char chunk[8192];
    util::Result<size_t> n = socket_.ReadSome(chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return util::Status::IoError("connection closed mid-body");
    }
    buf_.append(chunk, n.value());
  }
  response.body = buf_.substr(head_end + kHeadEnd.size(), content_length);
  buf_.erase(0, total);
  return response;
}

}  // namespace http
}  // namespace incentag
