// Minimal blocking HTTP/1.1 client over one keep-alive connection.
//
// Exists for the test suite, bench_http_ingest, and campaign_server's
// self-checks — not a general-purpose client. One connection, serial
// requests, Content-Length responses only (matching what server.cc
// emits). Not thread-safe; give each connection its own Client.
#ifndef INCENTAG_HTTP_CLIENT_H_
#define INCENTAG_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/socket.h"
#include "src/util/status.h"

namespace incentag {
namespace http {

struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-case.
  std::string body;

  const std::string* Header(std::string_view name) const;
};

class Client {
 public:
  Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  util::Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return socket_.valid(); }
  void Disconnect();

  // One round trip. Reconnects once if the server closed the keep-alive
  // connection between requests. Body may be empty (GET).
  util::Result<ClientResponse> Request(std::string_view method,
                                       std::string_view target,
                                       std::string_view body = {});

  // Convenience wrappers.
  util::Result<ClientResponse> Get(std::string_view target) {
    return Request("GET", target);
  }
  util::Result<ClientResponse> Post(std::string_view target,
                                    std::string_view body) {
    return Request("POST", target, body);
  }

 private:
  util::Result<ClientResponse> RoundTrip(std::string_view method,
                                         std::string_view target,
                                         std::string_view body);
  util::Result<ClientResponse> ReadResponse();

  std::string host_;
  uint16_t port_ = 0;
  util::Socket socket_;
  std::string buf_;  // Unconsumed bytes past the previous response.
};

}  // namespace http
}  // namespace incentag

#endif  // INCENTAG_HTTP_CLIENT_H_
