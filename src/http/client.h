// Minimal blocking HTTP/1.1 client over one keep-alive connection.
//
// Exists for the test suite, bench_http_ingest, and campaign_server's
// self-checks — not a general-purpose client. One connection, serial
// requests, Content-Length responses only (matching what server.cc
// emits). Not thread-safe; give each connection its own Client.
#ifndef INCENTAG_HTTP_CLIENT_H_
#define INCENTAG_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/socket.h"
#include "src/util/status.h"

namespace incentag {
namespace http {

struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-case.
  std::string body;

  const std::string* Header(std::string_view name) const;
};

// Bounded exponential backoff + jitter for Request (ISSUE 10). Two
// failure families retry: transport errors (the server idled out the
// keep-alive connection, or a mid-episode socket fault), which
// reconnect first; and 503 responses (fleet degraded-mode shedding),
// which honor the server's Retry-After header — capped, so a shedding
// server cannot park a client for minutes — and keep the connection.
// Everything the API serves is idempotent (completion intake dedups by
// seq), so resending a request whose fate is unknown is safe.
struct ClientRetryOptions {
  // Total round-trip attempts, including the first; 1 disables retries.
  int max_attempts = 4;
  int64_t initial_backoff_ms = 25;
  double multiplier = 2.0;
  int64_t max_backoff_ms = 1000;
  // Clamp for the server's Retry-After advertisement.
  int64_t max_retry_after_ms = 5000;
  // Seed for the deterministic backoff jitter (full jitter over the
  // upper half of each rung).
  uint64_t jitter_seed = 1;
  // Retry 503 responses; false returns them to the caller untouched.
  bool retry_on_503 = true;
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientRetryOptions retry) : retry_(retry) {}

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  util::Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return socket_.valid(); }
  void Disconnect();

  // One logical request: up to retry_.max_attempts round trips with
  // bounded backoff (see ClientRetryOptions). Transport errors
  // reconnect between attempts; 503s wait out Retry-After. The last
  // attempt's outcome — response or error — is returned as-is. Body may
  // be empty (GET).
  util::Result<ClientResponse> Request(std::string_view method,
                                       std::string_view target,
                                       std::string_view body = {});

  // Convenience wrappers.
  util::Result<ClientResponse> Get(std::string_view target) {
    return Request("GET", target);
  }
  util::Result<ClientResponse> Post(std::string_view target,
                                    std::string_view body) {
    return Request("POST", target, body);
  }

 private:
  util::Result<ClientResponse> RoundTrip(std::string_view method,
                                         std::string_view target,
                                         std::string_view body);
  util::Result<ClientResponse> ReadResponse();
  // Backoff for the gap before attempt `attempt` (1-based retry count),
  // with deterministic jitter; respects `retry_after_ms` (>= 0 = the
  // server's capped Retry-After) over the computed rung.
  int64_t NextDelayMs(int attempt, int64_t retry_after_ms);

  ClientRetryOptions retry_;
  uint64_t jitter_state_ = 0;  // lazily seeded from retry_.jitter_seed
  std::string host_;
  uint16_t port_ = 0;
  util::Socket socket_;
  std::string buf_;  // Unconsumed bytes past the previous response.
};

}  // namespace http
}  // namespace incentag

#endif  // INCENTAG_HTTP_CLIENT_H_
