// HTTP/1.1 wire types for the fleet's network edge (ISSUE 8).
//
// Dependency-free and deliberately small: request/response structs, a
// buffered keep-alive RequestReader with hard head/body size bounds
// (both limits are attacker-facing), and response serialization. The
// routing table and the REST semantics live in server.h /
// campaign_routes.h; this layer is bytes <-> structs only.
//
// Unsupported on purpose: chunked transfer encoding (rejected as
// malformed — every client of this API sends Content-Length), HTTP/1.0
// keep-alive, multiline header folding, and TLS (the edge terminates
// behind a trusted proxy, cf. the deployment note in src/http/README.md).
#ifndef INCENTAG_HTTP_HTTP_H_
#define INCENTAG_HTTP_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/socket.h"

namespace incentag {
namespace http {

// One parsed request. Header names are lower-cased at parse time;
// values keep their case. Query parameters are percent-decoded.
struct Request {
  std::string method;  // Upper-case by convention on the wire.
  std::string path;    // Percent-decoded, no query string.
  std::vector<std::pair<std::string, std::string>> query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  // First header named `name` (lower-case); nullptr when absent.
  const std::string* Header(std::string_view name) const;
  // First query parameter named `name`; nullptr when absent.
  const std::string* QueryParam(std::string_view name) const;
};

struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  // Extra headers (name must be canonical wire case, e.g. "Retry-After").
  std::vector<std::pair<std::string, std::string>> headers;
};

// Why Next() returned without a request. Each maps to a distinct edge
// behavior: kClosed/kTimeout end the connection silently, kTooLarge
// answers 413, kMalformed answers 400, kTransport logs and drops.
enum class ReadOutcome {
  kOk,
  kClosed,     // Peer closed cleanly between requests.
  kTimeout,    // Receive timeout expired (idle keep-alive slot).
  kTooLarge,   // Head or body exceeded its limit.
  kMalformed,  // Not parseable as HTTP/1.1.
  kTransport,  // Socket error (reset, EPIPE, ...).
};

struct ReadResult {
  ReadOutcome outcome = ReadOutcome::kOk;
  std::string error;  // Detail for kMalformed/kTransport.
};

struct ReadLimits {
  size_t max_head_bytes = 16 * 1024;
  size_t max_body_bytes = 4 * 1024 * 1024;
};

// Reads successive requests off one connection, buffering across
// keep-alive boundaries (a client may pipeline; bytes after one request
// are the start of the next). Not thread-safe; one reader per
// connection, used by that connection's worker only.
class RequestReader {
 public:
  RequestReader(util::Socket* socket, ReadLimits limits)
      : socket_(socket), limits_(limits) {}

  RequestReader(const RequestReader&) = delete;
  RequestReader& operator=(const RequestReader&) = delete;

  // Blocks for the next request (subject to the socket's recv timeout).
  // On kOk, `*out` is fully populated.
  ReadResult Next(Request* out);

 private:
  // Appends one recv's worth of bytes to buf_. kOk on progress.
  ReadResult Fill();

  util::Socket* socket_;
  ReadLimits limits_;
  std::string buf_;
};

// Serializes and writes one response. `keep_alive` controls the
// Connection header; callers close the socket themselves when false.
util::Status WriteResponse(util::Socket* socket, const Response& response,
                           bool keep_alive);

// Canonical reason phrase ("OK", "Not Found", ...); "Unknown" otherwise.
std::string_view StatusText(int status);

// Percent-decodes `in` ('+' becomes space — query-string convention).
// Invalid %-sequences pass through verbatim rather than failing: the
// edge treats them as literal text and lets validation reject later.
std::string PercentDecode(std::string_view in);

}  // namespace http
}  // namespace incentag

#endif  // INCENTAG_HTTP_HTTP_H_
