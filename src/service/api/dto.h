// Versioned API DTOs for the fleet's REST surface (ISSUE 8).
//
// Everything the HTTP edge says or understands is defined here — the
// /v1 request/response schemas, their JSON codecs, and the single
// util::StatusCode -> HTTP status mapping every endpoint uses. The edge
// (src/http/campaign_routes.cc) holds no schema knowledge of its own,
// so a /v2 is a new set of DTOs, not a rewrite of the routing.
//
// Schema reference with examples: src/http/README.md.
#ifndef INCENTAG_SERVICE_API_DTO_H_
#define INCENTAG_SERVICE_API_DTO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/service/campaign_manager.h"
#include "src/service/external_source.h"
#include "src/util/json.h"
#include "src/util/status.h"

namespace incentag {
namespace service {
namespace api {

// POST /v1/campaigns — the deterministic campaign inputs. The server
// attaches the non-serializable parts (dataset, strategy instance,
// stream) itself; this is the same split CampaignFactory makes at
// recovery.
struct SubmitCampaignRequest {
  std::string name;
  std::string strategy;
  int64_t budget = 0;
  int omega = 5;
  int64_t under_tagged_threshold = 10;
  int64_t batch_size = 1;
  int32_t priority = 1;
  double deadline_seconds = 0.0;
  uint64_t seed = 0;
};

// POST /v1/campaigns/{id}/completions — a span of finished tasks.
struct CompletionBatchRequest {
  std::vector<ExternalCompletion> completions;
  // Decode rejects batches above this (kInvalidArgument): bigger spans
  // should be split; the body-size limit backstops the wire anyway.
  static constexpr size_t kMaxBatch = 65536;
};

// Decoders validate shape and ranges and fail with kInvalidArgument;
// unknown fields are ignored (forward compatibility within /v1).
util::Result<SubmitCampaignRequest> DecodeSubmitCampaignRequest(
    const util::json::Value& body);
util::Result<CompletionBatchRequest> DecodeCompletionBatchRequest(
    const util::json::Value& body);

// Wire names for CampaignState ("running", "done", "cancelled",
// "failed") and the inverse for ?state= filters.
std::string_view CampaignStateName(CampaignState state);
bool ParseCampaignState(std::string_view name, CampaignState* out);

// Response encoders. CampaignStatusView is the JSON shape of one
// CampaignStatus; the page view wraps a listing with its pagination
// envelope {campaigns, total, offset, limit} (cf. the FastAPI listing
// shape in SNIPPETS.md snippet 1).
util::json::Value EncodeCampaignStatus(const CampaignStatus& status);
util::json::Value EncodeCampaignPage(const CampaignPage& page);
util::json::Value EncodeIntakeResult(const IntakeResult& result);

// ErrorResponse: {"error": {"code": "<status_code_name>", "message":
// ...}}. The one error shape every endpoint returns.
util::json::Value EncodeError(const util::Status& status);

// The single StatusCode -> HTTP status table (kOk -> 200, kNotFound ->
// 404, kInvalidArgument -> 400, kResourceExhausted -> 429, ...). Every
// endpoint maps through here; no ad-hoc numbers at the edge.
int HttpStatusFor(util::StatusCode code);

}  // namespace api
}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_API_DTO_H_
