#include "src/service/api/dto.h"

#include <cmath>
#include <utility>

namespace incentag {
namespace service {
namespace api {
namespace {

using util::json::Value;

// Field accessors: absent-or-wrong-kind aware. `required` failures name
// the field so clients can fix their payloads without reading our code.
util::Status Missing(std::string_view field) {
  return util::Status::InvalidArgument("missing or invalid field: " +
                                       std::string(field));
}

util::Result<std::string> GetString(const Value& obj, std::string_view key) {
  const Value* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) return Missing(key);
  return v->string_value();
}

// Integer field: must be a number holding an exact integer.
util::Result<int64_t> GetInt(const Value& obj, std::string_view key) {
  const Value* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return Missing(key);
  double d = v->number_value();
  if (d != std::floor(d) || std::fabs(d) > 9007199254740992.0) {
    return Missing(key);
  }
  return static_cast<int64_t>(d);
}

// Optional variants leave *out untouched when the field is absent but
// still reject a present-but-malformed value.
util::Status OptionalInt(const Value& obj, std::string_view key,
                         int64_t* out) {
  if (obj.Find(key) == nullptr) return util::Status::OK();
  util::Result<int64_t> v = GetInt(obj, key);
  if (!v.ok()) return v.status();
  *out = v.value();
  return util::Status::OK();
}

util::Status OptionalDouble(const Value& obj, std::string_view key,
                            double* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr) return util::Status::OK();
  if (!v->is_number()) return Missing(key);
  *out = v->number_value();
  return util::Status::OK();
}

}  // namespace

util::Result<SubmitCampaignRequest> DecodeSubmitCampaignRequest(
    const Value& body) {
  if (!body.is_object()) {
    return util::Status::InvalidArgument("request body must be an object");
  }
  SubmitCampaignRequest out;

  util::Result<std::string> name = GetString(body, "name");
  if (!name.ok()) return name.status();
  out.name = std::move(name).value();
  if (out.name.empty()) {
    return util::Status::InvalidArgument("name must be non-empty");
  }

  util::Result<std::string> strategy = GetString(body, "strategy");
  if (!strategy.ok()) return strategy.status();
  out.strategy = std::move(strategy).value();

  util::Result<int64_t> budget = GetInt(body, "budget");
  if (!budget.ok()) return budget.status();
  out.budget = budget.value();
  if (out.budget <= 0) {
    return util::Status::InvalidArgument("budget must be positive");
  }

  int64_t omega = out.omega;
  INCENTAG_RETURN_IF_ERROR(OptionalInt(body, "omega", &omega));
  if (omega <= 0 || omega > 1000000) {
    return util::Status::InvalidArgument("omega out of range");
  }
  out.omega = static_cast<int>(omega);

  INCENTAG_RETURN_IF_ERROR(OptionalInt(body, "under_tagged_threshold",
                                       &out.under_tagged_threshold));
  if (out.under_tagged_threshold < 0) {
    return util::Status::InvalidArgument(
        "under_tagged_threshold must be >= 0");
  }

  INCENTAG_RETURN_IF_ERROR(OptionalInt(body, "batch_size", &out.batch_size));
  if (out.batch_size <= 0) {
    return util::Status::InvalidArgument("batch_size must be positive");
  }

  int64_t priority = out.priority;
  INCENTAG_RETURN_IF_ERROR(OptionalInt(body, "priority", &priority));
  if (priority < 1 || priority > 1000000) {
    return util::Status::InvalidArgument("priority out of range");
  }
  out.priority = static_cast<int32_t>(priority);

  INCENTAG_RETURN_IF_ERROR(
      OptionalDouble(body, "deadline_seconds", &out.deadline_seconds));
  if (!std::isfinite(out.deadline_seconds) || out.deadline_seconds < 0.0) {
    return util::Status::InvalidArgument("deadline_seconds out of range");
  }

  int64_t seed = 0;
  INCENTAG_RETURN_IF_ERROR(OptionalInt(body, "seed", &seed));
  if (seed < 0) return util::Status::InvalidArgument("seed must be >= 0");
  out.seed = static_cast<uint64_t>(seed);

  return out;
}

util::Result<CompletionBatchRequest> DecodeCompletionBatchRequest(
    const Value& body) {
  if (!body.is_object()) {
    return util::Status::InvalidArgument("request body must be an object");
  }
  const Value* list = body.Find("completions");
  if (list == nullptr || !list->is_array()) {
    return Missing("completions");
  }
  if (list->items().size() > CompletionBatchRequest::kMaxBatch) {
    return util::Status::InvalidArgument(
        "completion batch exceeds " +
        std::to_string(CompletionBatchRequest::kMaxBatch) + " entries");
  }
  CompletionBatchRequest out;
  out.completions.reserve(list->items().size());
  for (const Value& item : list->items()) {
    if (!item.is_object()) {
      return util::Status::InvalidArgument(
          "completions entries must be objects");
    }
    util::Result<int64_t> seq = GetInt(item, "seq");
    if (!seq.ok()) return seq.status();
    if (seq.value() < 0) {
      return util::Status::InvalidArgument("seq must be >= 0");
    }
    util::Result<int64_t> resource = GetInt(item, "resource");
    if (!resource.ok()) return resource.status();
    if (resource.value() < 0 ||
        resource.value() >= static_cast<int64_t>(core::kInvalidResource)) {
      return util::Status::InvalidArgument("resource out of range");
    }
    ExternalCompletion c;
    c.seq = static_cast<uint64_t>(seq.value());
    c.resource = static_cast<core::ResourceId>(resource.value());
    out.completions.push_back(c);
  }
  return out;
}

std::string_view CampaignStateName(CampaignState state) {
  switch (state) {
    case CampaignState::kRunning:
      return "running";
    case CampaignState::kDone:
      return "done";
    case CampaignState::kCancelled:
      return "cancelled";
    case CampaignState::kFailed:
      return "failed";
    case CampaignState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

bool ParseCampaignState(std::string_view name, CampaignState* out) {
  if (name == "running") {
    *out = CampaignState::kRunning;
  } else if (name == "done") {
    *out = CampaignState::kDone;
  } else if (name == "cancelled") {
    *out = CampaignState::kCancelled;
  } else if (name == "failed") {
    *out = CampaignState::kFailed;
  } else if (name == "quarantined") {
    *out = CampaignState::kQuarantined;
  } else {
    return false;
  }
  return true;
}

Value EncodeCampaignStatus(const CampaignStatus& status) {
  Value v = Value::Object();
  v.Set("id", Value::Int(static_cast<int64_t>(status.id)));
  v.Set("name", Value::Str(status.name));
  v.Set("strategy", Value::Str(status.strategy));
  v.Set("state", Value::Str(std::string(CampaignStateName(status.state))));
  v.Set("budget", Value::Int(status.budget));
  v.Set("budget_spent", Value::Int(status.budget_spent));
  v.Set("tasks_completed", Value::Int(status.tasks_completed));
  v.Set("tasks_in_flight", Value::Int(status.tasks_in_flight));
  v.Set("priority", Value::Int(status.priority));
  v.Set("deadline_slack_seconds",
        Value::Number(status.deadline_slack_seconds));
  v.Set("quanta_run", Value::Int(status.quanta_run));
  v.Set("records_replayed", Value::Int(status.records_replayed));
  v.Set("checkpoints_recorded",
        Value::Int(static_cast<int64_t>(status.checkpoints_recorded)));
  v.Set("queue_delay_seconds", Value::Number(status.queue_delay_seconds));
  v.Set("elapsed_seconds", Value::Number(status.elapsed_seconds));
  v.Set("tasks_per_second", Value::Number(status.tasks_per_second));

  Value metrics = Value::Object();
  metrics.Set("budget_used", Value::Int(status.metrics.budget_used));
  metrics.Set("avg_quality", Value::Number(status.metrics.avg_quality));
  metrics.Set("over_tagged", Value::Int(status.metrics.over_tagged));
  metrics.Set("under_tagged", Value::Int(status.metrics.under_tagged));
  metrics.Set("wasted_posts", Value::Int(status.metrics.wasted_posts));
  v.Set("metrics", std::move(metrics));

  if (!status.error.empty()) v.Set("error", Value::Str(status.error));
  return v;
}

Value EncodeCampaignPage(const CampaignPage& page) {
  Value v = Value::Object();
  Value items = Value::Array();
  for (const CampaignStatus& s : page.statuses) {
    items.Append(EncodeCampaignStatus(s));
  }
  v.Set("campaigns", std::move(items));
  v.Set("total", Value::Int(static_cast<int64_t>(page.total)));
  v.Set("offset", Value::Int(static_cast<int64_t>(page.offset)));
  v.Set("limit", Value::Int(static_cast<int64_t>(page.limit)));
  return v;
}

Value EncodeIntakeResult(const IntakeResult& result) {
  Value v = Value::Object();
  v.Set("delivered", Value::Int(static_cast<int64_t>(result.delivered)));
  v.Set("duplicates", Value::Int(static_cast<int64_t>(result.duplicates)));
  v.Set("unknown", Value::Int(static_cast<int64_t>(result.unknown)));
  v.Set("invalid", Value::Int(static_cast<int64_t>(result.invalid)));
  return v;
}

Value EncodeError(const util::Status& status) {
  Value err = Value::Object();
  err.Set("code", Value::Str(std::string(util::StatusCodeName(
              status.code()))));
  err.Set("message", Value::Str(status.message()));
  Value v = Value::Object();
  v.Set("error", std::move(err));
  return v;
}

int HttpStatusFor(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kOk:
      return 200;
    case util::StatusCode::kInvalidArgument:
      return 400;
    case util::StatusCode::kNotFound:
      return 404;
    case util::StatusCode::kOutOfRange:
      return 416;
    case util::StatusCode::kFailedPrecondition:
      return 409;
    case util::StatusCode::kCorruption:
      return 500;
    case util::StatusCode::kIoError:
      return 500;
    case util::StatusCode::kResourceExhausted:
      return 429;
    case util::StatusCode::kUnimplemented:
      return 501;
    case util::StatusCode::kInternal:
      return 500;
    case util::StatusCode::kDeadlineExceeded:
      return 504;
  }
  return 500;
}

}  // namespace api
}  // namespace service
}  // namespace incentag
