#include "src/service/campaign_manager.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <utility>

#include "src/core/campaign_runtime.h"
#include "src/obs/metrics.h"
#include "src/persist/fsync_domain.h"
#include "src/service/fleet_health.h"
#include "src/obs/trace.h"
#include "src/util/file_io.h"
#include "src/util/logging.h"
#include "src/util/mutex.h"
#include "src/util/stopwatch.h"
#include "src/util/text.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace service {

namespace {

util::Status ValidateConfig(const CampaignConfig& config) {
  if (config.initial_posts == nullptr || config.references == nullptr) {
    return util::Status::InvalidArgument(
        "campaign needs initial posts and references");
  }
  if (config.initial_posts->size() != config.references->size()) {
    return util::Status::InvalidArgument(
        "initial posts / references size mismatch");
  }
  if (config.strategy == nullptr || config.stream == nullptr) {
    return util::Status::InvalidArgument(
        "campaign needs a strategy and a post stream");
  }
  return util::Status::OK();
}

std::string JournalPath(const std::string& dir, CampaignId id) {
  return dir + "/campaign-" + std::to_string(id) + ".journal";
}

// Inverse of JournalPath on the basename; 0 when the name does not match
// "campaign-<digits>.journal".
CampaignId ParseJournalId(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  constexpr char kPrefix[] = "campaign-";
  constexpr char kSuffix[] = ".journal";
  if (base.size() <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1 ||
      base.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0 ||
      base.compare(base.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                   kSuffix) != 0) {
    return 0;
  }
  const std::string digits = base.substr(
      sizeof(kPrefix) - 1,
      base.size() - (sizeof(kPrefix) - 1) - (sizeof(kSuffix) - 1));
  if (digits.empty()) return 0;
  CampaignId id = 0;
  for (char ch : digits) {
    if (ch < '0' || ch > '9') return 0;
    id = id * 10 + static_cast<CampaignId>(ch - '0');
  }
  return id;
}

constexpr char kSourceClosedError[] = "completion source closed";

// A transient journal-append failure (ENOSPC mid-episode) keeps the
// campaign running with the records retained in the writer's buffer —
// the sink's retry ladder will land them — up to this many buffered
// bytes. Past the cap the episode has outlived plausible recovery and
// the campaign quarantines instead of growing the heap unboundedly.
constexpr int64_t kMaxBufferedJournalBytes = 4 << 20;

// Degraded mode compacts aggressively: a journal this many bytes past
// its last snapshot rewrites even though the normal triggers have not
// fired, reclaiming disk while ENOSPC is the fleet's binding constraint.
constexpr int64_t kDegradedCompactBytes = 64 << 10;

obs::Counter* QuarantinesCounter() {
  static obs::Counter* counter = obs::Registry::Default().GetCounter(
      "incentag_service_quarantines_total",
      "Campaigns frozen after their journal fd went permanently sick");
  return counter;
}

// Fleet-wide service instruments (src/obs/README.md). Grouped in one
// lazily-built struct so each call site pays a single static-init guard.
struct ServiceMetrics {
  obs::Histogram* queue_wait_critical;
  obs::Histogram* queue_wait_background;
  obs::Histogram* quantum_seconds;
  obs::Histogram* completion_batch;
  obs::Counter* reorder_bypass;
  obs::Counter* reorder_heap;
  obs::Gauge* inbox_depth;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      ServiceMetrics m;
      m.queue_wait_critical = registry.GetHistogram(
          "incentag_scheduler_queue_wait_seconds",
          "Ready-queue wait from enqueue to pop, per scheduling class",
          obs::LatencyBoundsSeconds(), "class=\"critical\"");
      m.queue_wait_background = registry.GetHistogram(
          "incentag_scheduler_queue_wait_seconds",
          "Ready-queue wait from enqueue to pop, per scheduling class",
          obs::LatencyBoundsSeconds(), "class=\"background\"");
      m.quantum_seconds = registry.GetHistogram(
          "incentag_scheduler_quantum_seconds",
          "Wall time of one campaign scheduling quantum (Step)",
          obs::LatencyBoundsSeconds());
      m.completion_batch = registry.GetHistogram(
          "incentag_service_completion_batch_size",
          "In-order completions applied per batched ApplyRun",
          obs::BatchSizeBounds());
      m.reorder_bypass = registry.GetCounter(
          "incentag_service_reorder_bypass_total",
          "Completions applied via the in-order fast path");
      m.reorder_heap = registry.GetCounter(
          "incentag_service_reorder_heap_total",
          "Completions that took the reorder heap");
      m.inbox_depth = registry.GetGauge(
          "incentag_service_inbox_depth",
          "Completions delivered but not yet drained by a stepper");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

// All mutable campaign state. Ownership of the non-const parts is split
// three ways, so a step never contends with anything but its own inbox:
//   * stepper-owned: runtime, reorder buffer, pending deque, seq counters,
//     journal appends — touched only by the thread holding the
//     `scheduled` token;
//   * inbox: completed seqs from tagger threads, guarded by inbox_mu;
//   * published: the status snapshot + terminal report, guarded by
//     status_mu, written at step boundaries and read by pollers/waiters.
struct CampaignManager::Campaign {
  Campaign(CampaignId id_in, CampaignConfig config_in)
      : id(id_in),
        config(std::move(config_in)),
        strategy_name(config.strategy->name()),
        runtime(config.options, config.initial_posts, config.references) {}

  const CampaignId id;
  CampaignConfig config;
  // Cached at submit time: pollers must not call name() on a strategy a
  // stepper thread is concurrently mutating.
  const std::string strategy_name;
  // Scheduling class, clamped/validated once (pollers read these while
  // steppers run, and the scheduler got the same values at Register).
  const int32_t priority =
      config.options.priority < 1 ? 1 : config.options.priority;
  const double deadline_seconds =
      config.options.deadline_seconds > 0.0 ? config.options.deadline_seconds
                                            : 0.0;

  // ---- stepper-owned (guarded by the `scheduled` token) ----
  core::CampaignRuntime runtime;
  bool begun = false;
  // Assignment order of in-flight tasks; front corresponds to next_apply.
  std::deque<core::ResourceId> pending;
  // Completed seqs waiting for their predecessors (min-heap by seq).
  std::priority_queue<uint64_t, std::vector<uint64_t>,
                      std::greater<uint64_t>>
      reorder;
  uint64_t next_assign_seq = 0;
  uint64_t next_apply_seq = 0;
  std::vector<core::ResourceId> batch;
  std::vector<TaskHandle> tasks;
  // Step-scratch buffers, reused across quanta so the steady-state step
  // path performs no allocations: the inbox drain target, the in-order
  // run handed to ApplyCompletionBatch, and the completion records of
  // that run for the journal's batched append.
  std::vector<uint64_t> drained;
  std::vector<core::ResourceId> apply_run;
  std::vector<persist::CompletionRecord> journal_batch;
  // Built once at Submit/Recover and reused for every SubmitTasks call,
  // so the assignment path does not allocate a fresh std::function per
  // drawn batch.
  CompletionSource::CompletionFn completion_fn;
  // Write-ahead journal; null when the manager journals nothing.
  std::unique_ptr<persist::JournalWriter> journal;
  // The journaled deterministic inputs, kept so a compaction can rewrite
  // the journal's submit record without re-deriving it.
  persist::SubmitRecord submit_record;
  // next_apply_seq as of the last snapshot handed to the compactor; the
  // compact_every_n_completions policy measures from here.
  uint64_t last_compact_seq = 0;
  // Journal size when the last compaction rewrite finished; the
  // compact_journal_bytes policy measures from here. Atomic because the
  // compactor thread's done-callback stores it while the stepper reads.
  std::atomic<int64_t> bytes_at_last_compact{0};
  // Scheduler quanta this campaign has run (each Step dispatch is one).
  std::atomic<int64_t> quanta_run{0};
  // Ticks from Submit; measures scheduler queueing until the first step.
  util::Stopwatch submitted;
  // Restarted by the first step, so elapsed_seconds measures campaign
  // work, not time spent queued behind other campaigns (ISSUE 2).
  util::Stopwatch started;
  double queue_delay_s = 0.0;

  // ---- scheduling token ----
  // True while a step is scheduled or running; whoever flips false->true
  // owns the right (and duty) to submit the next step.
  std::atomic<bool> scheduled{false};
  // NowNs() when the campaign last entered the ready queue; exchanged to
  // 0 by the popping step, which observes the delta into the per-class
  // queue-wait histogram. 0 = not currently stamped.
  std::atomic<uint64_t> enqueued_ns{0};
  std::atomic<bool> cancel_requested{false};
  // Set by the sink's on_writer_sick callback (the retry ladder gave up
  // on this campaign's journal fd); consumed at a step boundary, which
  // freezes the campaign as kQuarantined. The error itself travels in
  // quarantine_error under status_mu.
  std::atomic<bool> quarantine_requested{false};
  // True while the campaign sits out fleet degraded mode (priority <= 1
  // and storage unhealthy): the token is released without stepping, and
  // FleetHealth's exit edge (ResumeParked) reschedules it.
  std::atomic<bool> parked{false};
  // Set by an explicit Compact() call; consumed at a step boundary.
  std::atomic<bool> compact_requested{false};
  // True while a compaction job for this campaign is queued or running.
  // At most one is ever in flight: a second job's tail offset would
  // refer to the pre-rewrite file layout and corrupt the journal.
  std::atomic<bool> compact_in_flight{false};
  // Set only by an explicit Cancel() call — not by Shutdown's teardown
  // sweep — so the journal records operator intent: a cancelled campaign
  // must stay cancelled across recovery, while a campaign interrupted by
  // a restart must resume.
  std::atomic<bool> user_cancelled{false};
  std::atomic<bool> finalized{false};

  // ---- completion inbox (MPSC: taggers produce, the stepper drains) ----
  // Completion spans land here under one lock per span; the stepper
  // swap-drains into `drained`, so the two vectors ping-pong their
  // capacity and neither side reallocates in steady state.
  util::Mutex inbox_mu;
  std::vector<uint64_t> inbox GUARDED_BY(inbox_mu);

  // ---- published snapshot + terminal state ----
  mutable util::Mutex status_mu;
  util::CondVar terminal_cv;
  CampaignState state GUARDED_BY(status_mu) = CampaignState::kRunning;
  core::AllocationMetrics metrics GUARDED_BY(status_mu);
  int64_t budget_spent GUARDED_BY(status_mu) = 0;
  int64_t tasks_completed GUARDED_BY(status_mu) = 0;
  int64_t tasks_in_flight GUARDED_BY(status_mu) = 0;
  int64_t records_replayed GUARDED_BY(status_mu) = 0;
  size_t checkpoints_recorded GUARDED_BY(status_mu) = 0;
  double queue_delay_seconds GUARDED_BY(status_mu) = 0.0;
  double elapsed_seconds GUARDED_BY(status_mu) = 0.0;
  // Deadline slack frozen at the moment the campaign went terminal;
  // while it runs, Status computes the live value instead.
  double final_deadline_slack_seconds GUARDED_BY(status_mu) = 0.0;
  std::string error GUARDED_BY(status_mu);
  std::string quarantine_error GUARDED_BY(status_mu);
  core::RunReport report GUARDED_BY(status_mu);

  double DeadlineSlackNow() const {
    return deadline_seconds > 0.0
               ? deadline_seconds - submitted.ElapsedSeconds()
               : 0.0;
  }
};

// One registry shard: a mutex plus the campaigns hashed to it. Campaigns
// are never erased before the manager is destroyed, so a pointer obtained
// under the shard lock stays valid afterwards.
struct CampaignManager::Shard {
  mutable util::Mutex mu;
  std::unordered_map<CampaignId, std::unique_ptr<Campaign>> campaigns
      GUARDED_BY(mu);
};

CampaignManager::CampaignManager(ManagerOptions options)
    : options_(options) {
  if (options_.num_shards <= 0) options_.num_shards = 1;
  if (options_.tasks_per_step <= 0) options_.tasks_per_step = 1;
  options_.scheduler.base_quantum = options_.tasks_per_step;
  const int threads = options_.num_threads > 0 ? options_.num_threads
                                               : util::DefaultThreadCount();
  // Ready-queue shards default to the worker count FOR ROUND-ROBIN
  // only: RR promises nothing beyond per-shard FIFO, so sharding it is
  // pure contention relief (the post-PR-4 bottleneck). The ranked
  // policies' cross-campaign order is their product — EDF's miss rate
  // rests on popping the globally earliest deadline — and the
  // first-non-empty-shard steal scan trades that order away, so sharding
  // them stays opt-in via SchedulerOptions::num_shards. (Deterministic
  // mode never touches the ready queue; one shard suffices.)
  if (options_.scheduler.num_shards <= 0) {
    const bool shard_by_default =
        !options_.deterministic &&
        options_.scheduler.policy == SchedulerPolicy::kRoundRobin;
    options_.scheduler.num_shards = shard_by_default ? threads : 1;
  }
  scheduler_ = MakeScheduler(options_.scheduler);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.completions != nullptr) {
    source_ = options_.completions;
  } else {
    inline_source_ = std::make_unique<InlineCompletionSource>();
    source_ = inline_source_.get();
  }
  if (!options_.journal_dir.empty()) {
    // Best effort here; a failure resurfaces as an open error at Submit.
    util::CreateDirectories(options_.journal_dir);
    // A pre-crash fleet commit log must be replayed into its journals
    // before the sink's fsync domain opens (and truncates) a fresh one —
    // this is the crash-recovery half of the group-commit contract, and
    // it must run even when the caller never calls Recover(). On failure
    // the old log is left in place and the domain runs without one.
    commit_log_recovered_ =
        persist::ApplyCommitLog(options_.journal_dir).ok();
    EnsureJournalWorkers();
  }
  if (!options_.deterministic) {
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
  if (options_.health != nullptr) {
    // Claim the exit edge: parked campaigns resume the moment storage
    // recovers instead of waiting for their next completion to poke
    // them. The hook is dropped again in Shutdown.
    options_.health->set_on_exit([this] { ResumeParked(); });
  }
}

// Spins up the journal's background helpers — the fsync batcher, and
// (outside deterministic mode, which compacts inline) the compactor.
// Called from the constructor when journal_dir is set and lazily from
// Recover, which journals recovered campaigns even when new submits are
// unjournaled; both call sites are single-threaded.
void CampaignManager::EnsureJournalWorkers() {
  if (sink_ == nullptr) {
    persist::JournalSinkOptions sink_options;
    sink_options.batch_interval_us = options_.journal_batch_interval_us;
    if (!options_.journal_dir.empty() && commit_log_recovered_) {
      sink_options.commit_log_path =
          options_.journal_dir + "/" + persist::kFleetCommitLogName;
    }
    sink_options.retry = options_.journal_retry;
    if (options_.health != nullptr) {
      FleetHealth* health = options_.health;
      sink_options.on_storage_error = [health](const util::Status& status) {
        health->ReportStorageError(status);
      };
      sink_options.on_storage_ok = [health] { health->ReportStorageOk(); };
    }
    sink_options.on_writer_sick = [this](persist::JournalWriter* writer,
                                         const util::Status& status) {
      OnWriterSick(writer, status);
    };
    sink_ = std::make_unique<persist::JournalSink>(sink_options);
  }
  if (compactor_ == nullptr && !options_.deterministic) {
    compactor_ = std::make_unique<persist::Compactor>();
  }
}

CampaignManager::~CampaignManager() { Shutdown(); }

int CampaignManager::num_threads() const {
  return pool_ == nullptr ? 0 : pool_->num_threads();
}

size_t CampaignManager::num_campaigns() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    n += shard->campaigns.size();
  }
  return n;
}

CampaignManager::Campaign* CampaignManager::Find(CampaignId id) const {
  const Shard& shard =
      *shards_[id % static_cast<CampaignId>(shards_.size())];
  util::MutexLock lock(&shard.mu);
  auto it = shard.campaigns.find(id);
  return it == shard.campaigns.end() ? nullptr : it->second.get();
}

util::Status CampaignManager::TryRegister(
    CampaignId id, std::unique_ptr<Campaign> campaign) {
  Shard& shard = *shards_[id % static_cast<CampaignId>(shards_.size())];
  util::MutexLock lock(&shard.mu);
  // Checked under the shard lock so Submit and Shutdown's sweep cannot
  // miss each other: Shutdown sets the flag before locking the shards,
  // so either this read sees it (reject) or the sweep's later snapshot
  // of this shard sees the campaign (cancel it).
  if (shutdown_.load()) {
    return util::Status::FailedPrecondition("manager is shut down");
  }
  shard.campaigns.emplace(id, std::move(campaign));
  return util::Status::OK();
}

util::Result<CampaignId> CampaignManager::Submit(CampaignConfig config) {
  INCENTAG_RETURN_IF_ERROR(ValidateConfig(config));
  const CampaignId id = next_id_.fetch_add(1);
  auto campaign = std::make_unique<Campaign>(id, std::move(config));
  Campaign* raw = campaign.get();
  raw->completion_fn = [this, raw](std::span<const TaskHandle> tasks) {
    OnCompletionBatch(raw, tasks);
  };

  if (!options_.journal_dir.empty()) {
    // The SubmitRecord must be durable before any work happens: a crash
    // after this point recovers the campaign, a crash before it means
    // the Submit call never happened (the torn file is skipped).
    const std::string path = JournalPath(options_.journal_dir, id);
    auto writer = persist::JournalWriter::Open(path, /*truncate_to=*/0);
    if (!writer.ok()) return writer.status();
    raw->submit_record.name = raw->config.name;
    raw->submit_record.strategy_name = raw->strategy_name;
    raw->submit_record.seed = raw->config.seed;
    raw->submit_record.options = raw->config.options;
    raw->journal = std::move(writer).value();
    util::Status journaled = raw->journal->AppendSubmit(raw->submit_record);
    if (journaled.ok()) journaled = raw->journal->Sync();
    // The file's fsync covers its data; the directory entry of the newly
    // created file needs its own fsync to survive power loss.
    if (journaled.ok()) journaled = util::SyncDir(options_.journal_dir);
    if (!journaled.ok()) {
      raw->journal.reset();
      util::RemoveFile(path);
      return journaled;
    }
  }

  util::Status registered = TryRegister(id, std::move(campaign));
  if (!registered.ok()) {
    // `raw` is destroyed; drop its journal so a later Recover does not
    // resurrect a campaign whose Submit returned an error.
    if (!options_.journal_dir.empty()) {
      util::RemoveFile(JournalPath(options_.journal_dir, id));
    }
    return registered;
  }
  // The Sync + SyncDir above established the domain's precondition: the
  // journal is durable to its full current size.
  if (sink_ != nullptr && raw->journal != nullptr) {
    sink_->Track(raw->journal.get());
  }
  if (options_.deterministic) {
    RunDeterministic(raw);
  } else {
    scheduler_->Register(
        id, ScheduleParams{raw->priority, raw->deadline_seconds});
    ScheduleStep(raw);
  }
  return id;
}

// The deterministic fallback: the exact driver AllocationEngine::Run uses,
// inline on the submitting thread — reports are byte-identical to the
// synchronous engine for identical inputs.
void CampaignManager::RunDeterministic(Campaign* c) {
  c->scheduled.store(true);  // the submitting thread is the stepper
  c->queue_delay_s = c->submitted.ElapsedSeconds();
  c->started.Restart();
  util::Status status =
      c->runtime.Begin(c->config.strategy.get(), c->config.stream.get());
  if (!status.ok()) {
    Finalize(c, CampaignState::kFailed, status.ToString());
    return;
  }
  c->begun = true;
  DriveDeterministic(c);
}

// Applies the completions collected in c->apply_run to the runtime and
// journals them as one batched append. Runs on the stepper. Returns
// false when the journal rejected the batch — the campaign is then
// finalized kFailed (the runtime did apply the run, but its journaled
// prefix is still a prefix of the applied state, so recovery stays
// consistent).
bool CampaignManager::ApplyRun(Campaign* c) {
  if (c->apply_run.empty()) return true;
  ServiceMetrics::Get().completion_batch->Observe(
      static_cast<double>(c->apply_run.size()));
  c->runtime.ApplyCompletionBatch(c->apply_run.data(), c->apply_run.size());
  if (c->journal != nullptr) {
    c->journal_batch.clear();
    uint64_t seq = c->next_apply_seq;
    for (core::ResourceId resource : c->apply_run) {
      c->journal_batch.push_back(persist::CompletionRecord{seq++, resource});
    }
    obs::TraceSpan append_span("journal_append");
    append_span.set_arg(static_cast<int64_t>(c->journal_batch.size()));
    util::Status journaled = c->journal->AppendCompletionBatch(
        c->journal_batch.data(), c->journal_batch.size());
    if (!journaled.ok()) {
      c->next_apply_seq += c->apply_run.size();
      const util::IoErrorClass io_class = util::ClassifyIoError(journaled);
      if (io_class == util::IoErrorClass::kNotIoError) {
        // Encoding/precondition bugs, not storage: fail as before.
        Finalize(c, CampaignState::kFailed, journaled.ToString());
        return false;
      }
      if (options_.health != nullptr) {
        options_.health->ReportStorageError(journaled);
      }
      // A failed AppendGather retains the unwritten remainder in the
      // writer's buffer, so the batch is fully part of the journal's
      // logical state — the campaign can keep running and the sink's
      // next flush/sync retries the bytes. Bounded: past the buffer cap
      // (or on a permanent error) the campaign quarantines with its
      // durable prefix intact.
      if (io_class == util::IoErrorClass::kTransient &&
          c->journal->buffered_bytes() <= kMaxBufferedJournalBytes) {
        FlushJournal(c);
        return true;
      }
      Quarantine(c, "journal append failed: " + journaled.ToString());
      return false;
    }
  }
  c->next_apply_seq += c->apply_run.size();
  return true;
}

// Drives a begun campaign to completion on the calling thread: applies
// whatever is pending, then draws/applies batches until the budget is
// spent — the same order AllocationEngine::Run uses. Journals each
// applied run as one batched append. Shared by deterministic Submit and
// deterministic recovery (which arrives here with a partially-applied
// pending deque).
void CampaignManager::DriveDeterministic(Campaign* c) {
  // The whole synchronous drive counts as a single scheduler quantum.
  c->quanta_run.fetch_add(1, std::memory_order_relaxed);
  util::Status status;
  for (;;) {
    if (c->quarantine_requested.load()) {
      std::string error;
      {
        util::MutexLock lock(&c->status_mu);
        error = c->quarantine_error;
      }
      Quarantine(c, std::move(error));
      return;
    }
    if (!c->pending.empty()) {
      c->apply_run.assign(c->pending.begin(), c->pending.end());
      c->pending.clear();
      if (!ApplyRun(c)) return;
    }
    FlushJournal(c);
    MaybeCompact(c);
    if (c->runtime.done()) break;
    status = c->runtime.DrawBatch(&c->batch);
    if (!status.ok()) {
      Finalize(c, CampaignState::kFailed, status.ToString());
      return;
    }
    if (c->batch.empty()) break;  // stopped early; loop finalizes
    for (core::ResourceId resource : c->batch) {
      c->pending.push_back(resource);
      ++c->next_assign_seq;
    }
  }
  Finalize(c, CampaignState::kDone, "");
}

void CampaignManager::ScheduleStep(Campaign* c) {
  if (!c->scheduled.exchange(true)) EnqueueDispatch(c);
}

// Marks the campaign runnable and pairs the ready-queue entry with one
// generic dispatch task on the pool. Called with the campaign's
// scheduled token held; the entry is popped by whichever dispatch the
// scheduler ranks it first for.
void CampaignManager::EnqueueDispatch(Campaign* c) {
  c->enqueued_ns.store(obs::NowNs(), std::memory_order_relaxed);
  scheduler_->Enqueue(c->id);
  if (!pool_->Submit([this] { DispatchStep(); })) {
    // Pool already shut down (late completion during teardown). Submit
    // only fails after Shutdown's sweep has finalized every campaign, so
    // the orphaned ready-queue entry can never be popped into a live
    // step; drop the token so nothing looks permanently scheduled.
    c->scheduled.store(false);
  }
}

// One worker trip through the scheduler: step whichever runnable
// campaign the policy ranks first right now (which need not be the one
// whose enqueue created this task).
void CampaignManager::DispatchStep() {
  const CampaignId id = scheduler_->PopNext();
  if (id == 0) return;  // entry removed by a concurrent Unregister
  Campaign* c = Find(id);
  if (c != nullptr) Step(c);
}

// A span of finished tasks from the completion source: one inbox lock
// and one (usually no-op) schedule for the whole burst, however many
// tasks it carries.
void CampaignManager::OnCompletionBatch(Campaign* c,
                                        std::span<const TaskHandle> tasks) {
  {
    util::MutexLock lock(&c->inbox_mu);
    if (c->inbox.capacity() == 0) {
      // First push: size for a whole assignment batch up front instead
      // of growing through the doubling ladder (ISSUE 5 satellite).
      // Clamped: batch_size is caller/journal-supplied and unvalidated,
      // and an absurd value must not turn into a giant allocation on
      // the completion path — past the clamp the vector just grows
      // normally.
      c->inbox.reserve(static_cast<size_t>(
          std::clamp<int64_t>(c->config.options.batch_size, 64, 4096)));
    }
    for (const TaskHandle& task : tasks) c->inbox.push_back(task.seq);
  }
  // Finalized campaigns take no more steps, so their pushes are dropped
  // from the gauge too (a push racing Finalize's drain can leak a few
  // units of depth; bounded by one batch and acceptable for a gauge).
  if (!c->finalized.load()) {
    ServiceMetrics::Get().inbox_depth->Add(
        static_cast<int64_t>(tasks.size()));
    ScheduleStep(c);
  }
}

void CampaignManager::FlushJournal(Campaign* c) {
  if (c->journal == nullptr) return;
  // With a sink, the quantum path costs no syscall: records sit in the
  // writer buffer until the sink's window commit flushes them as part
  // of the fsync it already pays for (SyncData and CollectUnsynced both
  // flush first). Durability is unchanged — buffered or flushed, a
  // record is durable only once the commit covering its Schedule
  // returns, and a crash in between loses a replayable tail either way.
  // Without a sink the buffer has no draining thread, so push to the
  // kernel here; errors are not fatal — the terminal Sync in Finalize
  // retries.
  if (sink_ != nullptr) {
    sink_->Schedule(c->journal.get());
    return;
  }
  c->journal->Flush();
}

// Runs on the stepper (token held), so the runtime, strategy, stream and
// seq counters are stable to serialize. The snapshot summarizes exactly
// the records currently in the journal — appends happen on this thread,
// in order — so the journal's current size is the tail boundary. The
// rewrite itself runs on the compactor thread; a failure there leaves
// the journal uncompacted but valid, so it is logged, not fatal.
void CampaignManager::MaybeCompact(Campaign* c) {
  if (c->journal == nullptr || !c->begun) return;
  // The primary trigger is journal bytes accumulated since the last
  // rewrite — what recovery has to replay and the rewrite has to copy —
  // with the PR 3 completion-count policy as a fallback trigger.
  const int64_t bytes_since =
      c->journal->size() - c->bytes_at_last_compact.load();
  // In degraded mode disk space is the fleet's binding constraint, so
  // any journal meaningfully past its snapshot rewrites now — the
  // snapshot-based rewrite usually shrinks the file.
  const bool degraded_due =
      options_.health != nullptr && options_.health->degraded() &&
      bytes_since >= kDegradedCompactBytes;
  const bool due =
      c->compact_requested.load() || degraded_due ||
      (options_.compact_journal_bytes > 0 &&
       bytes_since >= options_.compact_journal_bytes) ||
      (options_.compact_every_n_completions > 0 &&
       c->next_apply_seq - c->last_compact_seq >=
           static_cast<uint64_t>(options_.compact_every_n_completions));
  if (!due) return;
  // One rewrite at a time per campaign: the tail offset below is only
  // meaningful against the file layout the job will find. A skipped
  // round leaves compact_requested / the policy counters untouched, so
  // the next step boundary retries.
  if (c->compact_in_flight.exchange(true)) return;
  // Fleet-wide budget: at most max_concurrent_compactions rewrites in
  // flight across all campaigns, the neediest journal (most bytes since
  // its snapshot) first. A refusal is cheap — the due-state stays set
  // and the next step boundary asks again.
  if (!scheduler_->compaction_budget().Request(c->id, bytes_since)) {
    c->compact_in_flight.store(false);
    return;
  }
  c->compact_requested.store(false);

  persist::CompactionJob job;
  job.writer = c->journal.get();
  job.submit = c->submit_record;
  job.snapshot.num_completions = c->next_apply_seq;
  job.snapshot.next_assign_seq = c->next_assign_seq;
  job.snapshot.pending.assign(c->pending.begin(), c->pending.end());
  util::Status serialized =
      c->runtime.SerializeResumableState(&job.snapshot.runtime_state);
  if (!serialized.ok()) {
    INCENTAG_LOG_ERROR("campaign %llu snapshot failed: %s",
                       static_cast<unsigned long long>(c->id),
                       serialized.ToString().c_str());
    scheduler_->compaction_budget().Release(c->id);
    c->compact_in_flight.store(false);
    return;
  }
  job.tail_offset = c->journal->size();
  c->last_compact_seq = c->next_apply_seq;
  // The campaign and manager outlive the job: Shutdown stops the
  // compactor before any campaign is destroyed.
  job.done = [this, c](const util::Status& status) {
    if (status.ok()) {
      // Re-base the bytes trigger on the rewritten file: its size is the
      // snapshot prefix plus whatever tail accumulated meanwhile, so the
      // delta to the next trigger measures fresh post-snapshot bytes.
      c->bytes_at_last_compact.store(c->journal->size());
    } else {
      INCENTAG_LOG_ERROR("campaign %llu compaction failed: %s",
                         static_cast<unsigned long long>(c->id),
                         status.ToString().c_str());
    }
    scheduler_->compaction_budget().Release(c->id);
    c->compact_in_flight.store(false);
  };
  if (compactor_ != nullptr) {
    compactor_->Enqueue(std::move(job));
  } else {
    // Deterministic mode compacts inline on the driving thread.
    util::Status status =
        job.writer->Compact(job.submit, job.snapshot, job.tail_offset);
    job.done(status);
  }
}

// One scheduling quantum of a campaign. Exactly one thread runs Step for
// a given campaign at a time (the `scheduled` token); all stepper-owned
// state is therefore lock-free to touch. The quantum size — how many
// completions may be applied before the campaign must go back through
// the ready queue — comes from the scheduler, so a priority policy can
// hand high-priority campaigns proportionally more work per dispatch.
void CampaignManager::Step(Campaign* c) {
  if (c->finalized.load()) return;
  if (c->quarantine_requested.load()) {
    std::string error;
    {
      util::MutexLock lock(&c->status_mu);
      error = c->quarantine_error;
    }
    Quarantine(c, std::move(error));
    return;
  }
  // Fleet degraded mode: background-class campaigns give up their turn
  // (admission pause) so the storage stack's remaining headroom serves
  // critical campaigns and compaction. Cancellation still wins — a
  // parked campaign must stay cancellable.
  if (options_.health != nullptr && options_.health->degraded() &&
      c->priority <= 1 && !c->cancel_requested.load()) {
    c->parked.store(true);
    c->scheduled.store(false);
    // Re-check after releasing the token: ResumeParked may have swept
    // past between the degraded() read and the release, and a cancel
    // may have raced in. Without this the campaign would sleep until
    // its next completion.
    if ((!options_.health->degraded() || c->cancel_requested.load()) &&
        !c->scheduled.exchange(true)) {
      c->parked.store(false);
      EnqueueDispatch(c);
    }
    return;
  }
  c->parked.store(false);
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  // Queue wait: the delta from this campaign's last enqueue stamp.
  // exchange(0) so a stamp is observed exactly once even if a spurious
  // re-dispatch lands here twice.
  if (const uint64_t enqueued =
          c->enqueued_ns.exchange(0, std::memory_order_relaxed);
      enqueued != 0) {
    const uint64_t wait_ns = obs::NowNs() - enqueued;
    obs::Histogram* queue_wait = c->priority > 1
                                     ? metrics.queue_wait_critical
                                     : metrics.queue_wait_background;
    queue_wait->Observe(static_cast<double>(wait_ns) * 1e-9);
    obs::Trace::Record("queue_wait", enqueued, wait_ns,
                       static_cast<int64_t>(c->id));
  }
  obs::ScopedTimer quantum_timer(metrics.quantum_seconds);
  obs::TraceSpan quantum_span("quantum");
  quantum_span.set_arg(static_cast<int64_t>(c->id));
  const int64_t quantum = scheduler_->Quantum(c->id);
  c->quanta_run.fetch_add(1, std::memory_order_relaxed);

  if (!c->begun) {
    // Cancelled before the first step: skip Begin entirely — the report
    // is synthesized from the config in Finalize.
    if (c->cancel_requested.load()) {
      Finalize(c, CampaignState::kCancelled, "");
      return;
    }
    c->queue_delay_s = c->submitted.ElapsedSeconds();
    c->started.Restart();
    util::Status status =
        c->runtime.Begin(c->config.strategy.get(), c->config.stream.get());
    if (!status.ok()) {
      Finalize(c, CampaignState::kFailed, status.ToString());
      return;
    }
    c->begun = true;
  }

  int64_t applied = 0;
  for (;;) {
    if (c->cancel_requested.load()) {
      Finalize(c, CampaignState::kCancelled, "");
      return;
    }
    if (c->quarantine_requested.load()) {
      std::string error;
      {
        util::MutexLock lock(&c->status_mu);
        error = c->quarantine_error;
      }
      Quarantine(c, std::move(error));
      return;
    }

    // Drain the inbox into the reusable scratch buffer (one lock, no
    // allocation: the swap ping-pongs the warmed-up capacities), then
    // collect the in-order run to apply.
    c->drained.clear();
    {
      util::MutexLock lock(&c->inbox_mu);
      c->drained.swap(c->inbox);
    }
    if (!c->drained.empty()) {
      metrics.inbox_depth->Add(-static_cast<int64_t>(c->drained.size()));
    }
    const int64_t want = quantum - applied;
    c->apply_run.clear();
    // Fast path: arrivals that are exactly the next seqs to apply (the
    // overwhelmingly common case — sources complete in assignment order
    // unless tagger latencies interleave) go straight into the run,
    // bypassing the reorder heap entirely. Seqs are unique, so if the
    // heap held the next seq the drained span could not also carry it;
    // the first out-of-order seq breaks the run and falls through.
    size_t di = 0;
    while (di < c->drained.size() &&
           static_cast<int64_t>(c->apply_run.size()) < want &&
           c->drained[di] ==
               c->next_apply_seq + c->apply_run.size()) {
      c->apply_run.push_back(c->pending.front());
      c->pending.pop_front();
      ++di;
    }
    const size_t bypassed = di;
    // Stragglers (and anything past the quantum) wait in the heap.
    for (; di < c->drained.size(); ++di) c->reorder.push(c->drained[di]);
    while (static_cast<int64_t>(c->apply_run.size()) < want &&
           !c->reorder.empty() &&
           c->reorder.top() == c->next_apply_seq + c->apply_run.size()) {
      c->reorder.pop();
      c->apply_run.push_back(c->pending.front());
      c->pending.pop_front();
    }
    if (bypassed > 0) {
      metrics.reorder_bypass->Add(static_cast<int64_t>(bypassed));
    }
    if (c->apply_run.size() > bypassed) {
      metrics.reorder_heap->Add(
          static_cast<int64_t>(c->apply_run.size() - bypassed));
    }
    applied += static_cast<int64_t>(c->apply_run.size());
    // Vectorized apply + one batched journal append for the whole run.
    if (!ApplyRun(c)) return;
    MaybeCompact(c);

    if (c->runtime.done() && c->pending.empty()) {
      Finalize(c, CampaignState::kDone, "");
      return;
    }

    if (applied >= quantum) {
      // Quantum exhausted: yield the worker and go back through the
      // scheduler's ready queue so other campaigns run, but keep the
      // token — we know there is more to do right now.
      PublishStatus(c);
      FlushJournal(c);
      EnqueueDispatch(c);
      return;
    }

    // Assignment phase: a new batch is drawn only once the previous one
    // is fully applied, mirroring the synchronous engine's semantics.
    if (!c->runtime.done() && c->pending.empty()) {
      util::Status status = c->runtime.DrawBatch(&c->batch);
      if (!status.ok()) {
        Finalize(c, CampaignState::kFailed, status.ToString());
        return;
      }
      if (c->batch.empty()) continue;  // stopped early; loop finalizes
      c->tasks.clear();
      c->tasks.reserve(c->batch.size());
      for (core::ResourceId resource : c->batch) {
        c->tasks.push_back(TaskHandle{c->id, resource, c->next_assign_seq});
        c->pending.push_back(resource);
        ++c->next_assign_seq;
      }
      PublishStatus(c);
      // May complete some tasks synchronously (inline source): their
      // completion spans land in the inbox and the next loop iteration
      // applies them. The token stays with us, so re-schedule attempts
      // by those callbacks are cheap no-ops.
      if (!source_->SubmitTasks(c->tasks, c->completion_fn)) {
        // The source dropped part of the batch (it was stopped): those
        // completions can never arrive, so fail fast instead of leaving
        // the campaign kRunning forever (ISSUE 2).
        Finalize(c, CampaignState::kFailed, kSourceClosedError);
        return;
      }
      continue;
    }

    // Waiting on external completions: publish progress and release the
    // token, then re-check the inbox — a completion may have raced in
    // between the drain above and the release.
    PublishStatus(c);
    FlushJournal(c);
    c->scheduled.store(false);
    bool inbox_nonempty;
    {
      util::MutexLock lock(&c->inbox_mu);
      inbox_nonempty = !c->inbox.empty();
    }
    if ((inbox_nonempty || c->cancel_requested.load()) &&
        !c->scheduled.exchange(true)) {
      EnqueueDispatch(c);
    }
    return;
  }
}

void CampaignManager::PublishStatus(Campaign* c) {
  util::MutexLock lock(&c->status_mu);
  c->metrics = c->runtime.Metrics();
  c->budget_spent = c->runtime.spent();
  c->tasks_completed = c->runtime.tasks_completed();
  c->tasks_in_flight = static_cast<int64_t>(c->pending.size());
  c->checkpoints_recorded = c->runtime.checkpoints_recorded();
  c->queue_delay_seconds = c->queue_delay_s;
  c->elapsed_seconds = c->started.ElapsedSeconds();
}

void CampaignManager::Finalize(Campaign* c, CampaignState state,
                               std::string error) {
  // Terminal durability point: whatever the journal holds must hit the
  // disk before waiters observe the terminal state. Best effort — a
  // failed sync only costs a replayable tail at recovery. An explicit
  // operator cancellation is journaled so Recover finalizes the campaign
  // as kCancelled instead of resuming its spend.
  if (c->journal != nullptr) {
    if (state == CampaignState::kCancelled && c->user_cancelled.load()) {
      c->journal->AppendCancel();
    }
    c->journal->Sync();
  }
  // Keep the token forever: no further steps can be scheduled, and late
  // completions are dropped in OnCompletion via `finalized`.
  {
    util::MutexLock lock(&c->status_mu);
    c->state = state;
    c->error = std::move(error);
    if (state != CampaignState::kFailed) {
      if (c->begun) {
        c->report = c->runtime.Finish();
        // A cancellation that left budget unspent stopped the run early
        // in the RunReport sense, even though the strategy never
        // declined.
        if (state == CampaignState::kCancelled &&
            c->report.budget_spent < c->config.options.budget) {
          c->report.stopped_early = true;
        }
        c->metrics = c->report.final_metrics;
        c->budget_spent = c->report.budget_spent;
        c->tasks_completed = c->runtime.tasks_completed();
        c->checkpoints_recorded = c->report.checkpoints.size();
      } else {
        // Cancelled before Begin: synthesize the report from the config
        // so it is distinguishable from a real (if empty) run — the
        // default-constructed report used to leak out here (ISSUE 2).
        c->report.strategy_name = c->strategy_name;
        c->report.allocation.assign(c->config.initial_posts->size(), 0);
        c->report.budget_spent = 0;
        c->report.stopped_early = c->config.options.budget > 0;
      }
    }
    c->tasks_in_flight = static_cast<int64_t>(c->pending.size());
    c->queue_delay_seconds = c->queue_delay_s;
    c->elapsed_seconds = c->begun ? c->started.ElapsedSeconds() : 0.0;
    c->final_deadline_slack_seconds = c->DeadlineSlackNow();
  }
  // Out of the fleet: drop any ready-queue entry and pending compaction
  // request so a terminal campaign cannot outrank live ones.
  scheduler_->Unregister(c->id);
  scheduler_->compaction_budget().Forget(c->id);
  c->finalized.store(true);
  // Undelivered completions will never be drained by a stepper now, so
  // retire them from the fleet inbox-depth gauge; pushes arriving after
  // the finalized flag above skip the gauge entirely.
  {
    util::MutexLock lock(&c->inbox_mu);
    if (!c->inbox.empty()) {
      ServiceMetrics::Get().inbox_depth->Add(
          -static_cast<int64_t>(c->inbox.size()));
      c->inbox.clear();
    }
  }
  c->terminal_cv.NotifyAll();
}

// Freezes a campaign whose journal fd is permanently sick. Runs on the
// stepper (token held). The deliberate differences from Finalize:
//   * no terminal Sync — after a permanently failed fdatasync the page
//     cache is untrusted (fsyncgate), and syncing through the sick fd
//     would either fail again or, worse, succeed vacuously;
//   * no AppendCancel and no report — the journal's durable prefix is
//     the campaign's resumable truth, and Recover() on a healthy disk
//     replays it exactly like a crash tail;
//   * the writer is untracked from the sink first, so no later group
//     commit (or teardown straggler sync) touches the fd again.
void CampaignManager::Quarantine(Campaign* c, std::string error) {
  if (sink_ != nullptr && c->journal != nullptr) {
    sink_->Untrack(c->journal.get());
  }
  {
    util::MutexLock lock(&c->status_mu);
    c->state = CampaignState::kQuarantined;
    c->error = std::move(error);
    c->tasks_in_flight = static_cast<int64_t>(c->pending.size());
    c->queue_delay_seconds = c->queue_delay_s;
    c->elapsed_seconds = c->begun ? c->started.ElapsedSeconds() : 0.0;
    c->final_deadline_slack_seconds = c->DeadlineSlackNow();
  }
  scheduler_->Unregister(c->id);
  scheduler_->compaction_budget().Forget(c->id);
  c->finalized.store(true);
  {
    util::MutexLock lock(&c->inbox_mu);
    if (!c->inbox.empty()) {
      ServiceMetrics::Get().inbox_depth->Add(
          -static_cast<int64_t>(c->inbox.size()));
      c->inbox.clear();
    }
  }
  QuarantinesCounter()->Increment();
  c->terminal_cv.NotifyAll();
}

// Sink-thread callback: the retry ladder exhausted (or hit a permanent
// error on) `writer`. Flag the owning campaign; its next step boundary
// performs the actual quarantine on the stepper, where the journal and
// runtime state are safe to touch. Repeat reports for the same writer
// (a commit already in flight when the campaign untracked) are no-ops.
void CampaignManager::OnWriterSick(persist::JournalWriter* writer,
                                   const util::Status& status) {
  for (const auto& shard : shards_) {
    Campaign* found = nullptr;
    {
      util::MutexLock lock(&shard->mu);
      for (const auto& [id, campaign] : shard->campaigns) {
        // `journal` is set before registration and never reassigned, so
        // reading the pointer under the shard lock is safe.
        if (campaign->journal.get() == writer) {
          found = campaign.get();
          break;
        }
      }
    }
    if (found == nullptr) continue;
    if (found->finalized.load() ||
        found->quarantine_requested.exchange(true)) {
      return;
    }
    {
      util::MutexLock lock(&found->status_mu);
      found->quarantine_error =
          "journal sync failed permanently: " + status.ToString();
    }
    if (!options_.deterministic) ScheduleStep(found);
    return;
  }
}

// FleetHealth exit edge: reschedule everything that sat out degraded
// mode. ScheduleStep is a no-op for campaigns whose token is held, and
// a re-park is harmless if the health flaps back before the step runs.
void CampaignManager::ResumeParked() {
  if (options_.deterministic) return;
  std::vector<Campaign*> parked;
  for (const auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    for (const auto& [id, campaign] : shard->campaigns) {
      if (campaign->parked.load()) parked.push_back(campaign.get());
    }
  }
  for (Campaign* c : parked) {
    c->parked.store(false);
    if (!c->finalized.load()) ScheduleStep(c);
  }
}

util::Status CampaignManager::Cancel(CampaignId id) {
  Campaign* c = Find(id);
  if (c == nullptr) return util::Status::NotFound("no such campaign");
  c->user_cancelled.store(true);
  c->cancel_requested.store(true);
  if (!options_.deterministic && !c->finalized.load()) ScheduleStep(c);
  return util::Status::OK();
}

util::Status CampaignManager::Compact(CampaignId id) {
  Campaign* c = Find(id);
  if (c == nullptr) return util::Status::NotFound("no such campaign");
  if (c->journal == nullptr) {
    return util::Status::FailedPrecondition("campaign is not journaled");
  }
  if (c->finalized.load()) {
    // Finish() moved the runtime's state into the report; there is
    // nothing left to snapshot (and nothing left to gain — a terminal
    // journal replays once, at recovery, into a terminal campaign).
    return util::Status::FailedPrecondition("campaign is terminal");
  }
  c->compact_requested.store(true);
  if (!options_.deterministic && !c->finalized.load()) ScheduleStep(c);
  return util::Status::OK();
}

util::Result<CampaignStatus> CampaignManager::Status(CampaignId id) const {
  const Campaign* c = Find(id);
  if (c == nullptr) return util::Status::NotFound("no such campaign");
  CampaignStatus out;
  out.id = c->id;
  out.name = c->config.name;
  out.strategy = c->strategy_name;
  out.budget = c->config.options.budget;
  out.priority = c->priority;
  out.quanta_run = c->quanta_run.load(std::memory_order_relaxed);
  util::MutexLock lock(&c->status_mu);
  out.state = c->state;
  out.deadline_slack_seconds = c->state == CampaignState::kRunning
                                   ? c->DeadlineSlackNow()
                                   : c->final_deadline_slack_seconds;
  out.budget_spent = c->budget_spent;
  out.tasks_completed = c->tasks_completed;
  out.tasks_in_flight = c->tasks_in_flight;
  out.records_replayed = c->records_replayed;
  out.metrics = c->metrics;
  out.checkpoints_recorded = c->checkpoints_recorded;
  out.queue_delay_seconds = c->queue_delay_seconds;
  out.elapsed_seconds = c->elapsed_seconds;
  out.tasks_per_second =
      c->elapsed_seconds > 0.0
          ? static_cast<double>(c->tasks_completed) / c->elapsed_seconds
          : 0.0;
  out.error = c->error;
  return out;
}

CampaignPage CampaignManager::List(const ListQuery& query) const {
  std::vector<CampaignId> ids;
  for (const auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    for (const auto& [id, campaign] : shard->campaigns) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());

  CampaignPage page;
  page.offset = query.offset;
  page.limit = std::min(query.limit, ListQuery::kMaxLimit);
  const std::string needle = util::AsciiToLower(query.search);
  // One pass in id order: count every match, snapshot only the window.
  // Status(id) takes that campaign's status_mu and nothing else, so a
  // full-fleet listing never touches an inbox lock or stalls a stepper.
  for (CampaignId id : ids) {
    auto status = Status(id);
    if (!status.ok()) continue;  // Raced a concurrent teardown.
    CampaignStatus& s = status.value();
    if (query.state.has_value() && s.state != *query.state) continue;
    if (!needle.empty() &&
        util::AsciiToLower(s.name).find(needle) == std::string::npos) {
      continue;
    }
    if (page.total >= page.offset &&
        page.statuses.size() < page.limit) {
      page.statuses.push_back(std::move(s));
    }
    ++page.total;
  }
  return page;
}

util::Result<core::RunReport> CampaignManager::Wait(CampaignId id) {
  Campaign* c = Find(id);
  if (c == nullptr) return util::Status::NotFound("no such campaign");
  util::MutexLock lock(&c->status_mu);
  while (c->state == CampaignState::kRunning) {
    c->terminal_cv.Wait(&c->status_mu);
  }
  if (c->state == CampaignState::kFailed) {
    return util::Status::Internal("campaign failed: " + c->error);
  }
  if (c->state == CampaignState::kQuarantined) {
    // No report: the campaign froze mid-run. Its journal is the
    // resumable truth; Recover() on healthy storage continues it.
    return util::Status::FailedPrecondition("campaign quarantined: " +
                                            c->error);
  }
  return c->report;
}

util::Result<CampaignResult> CampaignManager::WaitFor(
    CampaignId id, std::chrono::milliseconds timeout) {
  Campaign* c = Find(id);
  if (c == nullptr) return util::Status::NotFound("no such campaign");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::MutexLock lock(&c->status_mu);
  while (c->state == CampaignState::kRunning) {
    if (!c->terminal_cv.WaitUntil(&c->status_mu, deadline) &&
        c->state == CampaignState::kRunning) {
      break;
    }
  }
  if (c->state == CampaignState::kRunning) {
    return util::Status::DeadlineExceeded(
        "campaign " + std::to_string(id) + " not terminal after " +
        std::to_string(timeout.count()) + "ms");
  }
  CampaignResult out;
  out.id = id;
  out.state = c->state;
  out.report = c->report;
  out.error = c->error;
  return out;
}

void CampaignManager::WaitAll() {
  std::vector<CampaignId> ids;
  for (const auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    for (const auto& [id, campaign] : shard->campaigns) ids.push_back(id);
  }
  for (CampaignId id : ids) Wait(id);
}

util::Result<std::vector<CampaignId>> CampaignManager::Recover(
    const std::string& dir, const CampaignFactory& factory) {
  // Fold any fleet commit log into its journal files before reading
  // them. Skipped when this manager's own sink already consumed (and
  // re-created) the log in `dir` — replaying a *live* log would patch
  // files that are mid-write.
  const bool own_log_live =
      sink_ != nullptr && dir == options_.journal_dir &&
      sink_->domain().commit_log_active();
  if (!own_log_live) {
    INCENTAG_RETURN_IF_ERROR(persist::ApplyCommitLog(dir));
  }
  auto files = util::ListDirFiles(dir, ".journal");
  if (!files.ok()) return files.status();

  // Phase 1: parse and validate every journal with no side effects, so a
  // factory or corruption error aborts recovery before any campaign has
  // been registered or resumed — the caller can fix the input and call
  // Recover again without double-resuming anything.
  struct Pending {
    std::string path;
    persist::JournalContents contents;
    CampaignConfig config;
  };
  std::vector<Pending> pending;
  for (const std::string& path : files.value()) {
    if (recovered_paths_.count(path) > 0) continue;  // a retried Recover
    auto contents = persist::ReadJournal(path);
    if (!contents.ok()) return contents.status();
    if (!contents.value().has_submit) continue;
    // A parseable id that is already registered means this journal's
    // campaign is live in this manager; never open a second writer on a
    // file a live campaign is appending to.
    const CampaignId parsed = ParseJournalId(path);
    if (parsed != 0 && Find(parsed) != nullptr) continue;
    auto config = factory(contents.value().submit);
    if (!config.ok()) return config.status();
    INCENTAG_RETURN_IF_ERROR(ValidateConfig(config.value()));
    pending.push_back(Pending{path, std::move(contents).value(),
                              std::move(config).value()});
  }

  // Phase 2: register and resume. Only IO-level failures can abort from
  // here on, and resumed journals are remembered, so even such an abort
  // is safely retryable.
  std::vector<CampaignId> out;
  for (Pending& p : pending) {
    auto recovered = RecoverOne(p.path, p.contents, std::move(p.config));
    if (!recovered.ok()) return recovered.status();
    recovered_paths_.insert(p.path);
    out.push_back(recovered.value());
  }
  return out;
}

// Resurrects one parsed-and-validated journal. Runs on the calling
// thread with the campaign's scheduling token held throughout the
// replay.
util::Result<CampaignId> CampaignManager::RecoverOne(
    const std::string& path, const persist::JournalContents& contents,
    CampaignConfig config) {
  const std::vector<persist::CompletionRecord>& trace =
      contents.completions;

  // Keep the campaign's pre-crash id when the file name encodes one (ids
  // are then stable across restarts), and move next_id_ past it so a
  // later Submit can never be handed an id whose journal file this
  // recovered campaign is still appending to.
  CampaignId id = ParseJournalId(path);
  if (id != 0 && Find(id) == nullptr) {
    CampaignId current = next_id_.load();
    while (current <= id &&
           !next_id_.compare_exchange_weak(current, id + 1)) {
    }
  } else {
    id = next_id_.fetch_add(1);
  }
  auto campaign = std::make_unique<Campaign>(id, std::move(config));
  Campaign* c = campaign.get();
  c->completion_fn = [this, c](std::span<const TaskHandle> tasks) {
    OnCompletionBatch(c, tasks);
  };

  // A crash mid-compaction can leave a temp rewrite next to the journal;
  // it was never renamed, so it is dead weight — the journal itself is
  // the (old, uncompacted) truth.
  util::RemoveFile(path + persist::kCompactionTmpSuffix);

  // Resume the original journal file: drop the torn tail (if any), then
  // append post-recovery completions after the last intact record.
  auto writer = persist::JournalWriter::Open(path, contents.valid_bytes);
  if (!writer.ok()) return writer.status();
  c->journal = std::move(writer).value();
  c->submit_record = contents.submit;
  // Bytes-trigger baseline: a snapshot-bearing journal counts as freshly
  // compacted (only post-recovery growth should re-trigger); a legacy
  // uncompacted journal starts at 0 so the policy compacts it soon.
  if (contents.has_snapshot) {
    c->bytes_at_last_compact.store(contents.valid_bytes);
  }
  // Journaling may be off for new submits; recovered campaigns still
  // need the fsync batcher (and compactor). Recover runs single-threaded
  // before the recovered campaigns step, so this lazy init is
  // unsynchronized.
  EnsureJournalWorkers();

  INCENTAG_RETURN_IF_ERROR(TryRegister(id, std::move(campaign)));
  // The file survived the crash (and ApplyCommitLog already folded any
  // logged patches into it), so it is durable to the truncated size —
  // the fsync domain's tracking precondition.
  sink_->Track(c->journal.get());

  // ---- replay: seek to the latest snapshot, replay only the tail ----
  c->scheduled.store(true);  // the recovering thread is the stepper
  c->queue_delay_s = c->submitted.ElapsedSeconds();
  c->started.Restart();
  uint64_t replay_from = 0;
  if (contents.has_snapshot) {
    // Restore the campaign's full resumable state from the snapshot;
    // Algorithm 1 determinism makes this byte-identical to replaying the
    // num_completions records it summarizes. A runtime-level restore
    // failure cannot fall back to full replay — the strategy, stream and
    // runtime are partially consumed by then, and a compacted journal no
    // longer holds the summarized prefix anyway — so it fails loudly.
    util::Status restored = c->runtime.RestoreResumableState(
        contents.snapshot.runtime_state, c->config.strategy.get(),
        c->config.stream.get());
    if (!restored.ok()) {
      Finalize(c, CampaignState::kFailed,
               "journal snapshot failed to restore: " + restored.ToString());
      return id;
    }
    c->begun = true;
    c->next_apply_seq = contents.snapshot.num_completions;
    c->next_assign_seq = contents.snapshot.next_assign_seq;
    c->last_compact_seq = contents.snapshot.num_completions;
    for (core::ResourceId resource : contents.snapshot.pending) {
      c->pending.push_back(resource);
    }
    replay_from = contents.snapshot.num_completions;
  } else {
    // No usable snapshot. Full replay works when the completion trace
    // starts at seq 0 — which is also the corrupt-snapshot fallback: a
    // snapshot whose intact frame fails to decode (snapshot_status) in
    // an uncompacted journal degrades to replaying everything. But a
    // trace that starts later — or an undecodable snapshot with NO tail
    // at all, the normal state right after a compaction — lost its
    // prefix to that snapshot; restarting from Begin would silently
    // discard the campaign's whole pre-crash spend, so fail loudly.
    if ((!trace.empty() && trace.front().seq != 0) ||
        (trace.empty() && !contents.snapshot_status.ok())) {
      Finalize(c, CampaignState::kFailed,
               "journal snapshot is unusable (" +
                   contents.snapshot_status.ToString() +
                   ") and the completion trace " +
                   (trace.empty()
                        ? std::string("was compacted into it")
                        : "starts at seq " +
                              std::to_string(trace.front().seq)) +
                   ": full replay impossible");
      return id;
    }
    util::Status status =
        c->runtime.Begin(c->config.strategy.get(), c->config.stream.get());
    if (!status.ok()) {
      Finalize(c, CampaignState::kFailed, status.ToString());
      return id;
    }
    c->begun = true;
  }
  int64_t replayed = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    // Records the snapshot already summarizes (an uncompacted journal
    // with an inline checkpoint still carries them).
    if (trace[i].seq < replay_from) continue;
    if (c->pending.empty()) {
      util::Status status = c->runtime.DrawBatch(&c->batch);
      if (!status.ok()) {
        Finalize(c, CampaignState::kFailed, status.ToString());
        return id;
      }
      if (c->batch.empty()) {
        Finalize(c, CampaignState::kFailed,
                 "journal replay diverged: " + std::to_string(trace.size()) +
                     " recorded completions but the campaign stopped after " +
                     std::to_string(i));
        return id;
      }
      for (core::ResourceId resource : c->batch) {
        c->pending.push_back(resource);
        ++c->next_assign_seq;
      }
    }
    // The journal records completions in application (= assignment)
    // order; any divergence means the factory rebuilt a different
    // campaign (wrong seed, options, or dataset) and replaying further
    // would fabricate state.
    if (trace[i].seq != c->next_apply_seq ||
        trace[i].resource != c->pending.front()) {
      Finalize(c, CampaignState::kFailed,
               "journal replay diverged at record " + std::to_string(i) +
                   ": recorded seq " + std::to_string(trace[i].seq) +
                   "/resource " + std::to_string(trace[i].resource) +
                   ", replay expected seq " +
                   std::to_string(c->next_apply_seq) + "/resource " +
                   std::to_string(c->pending.front()));
      return id;
    }
    c->pending.pop_front();
    c->runtime.ApplyCompletion(trace[i].resource);
    ++c->next_apply_seq;
    ++replayed;
  }
  {
    // Observability for benches and the recovery demo: how much tail the
    // snapshot seek left to replay. Guarded because pollers may already
    // see the registered campaign.
    util::MutexLock lock(&c->status_mu);
    c->records_replayed = replayed;
  }

  // ---- resume live from exactly where the journal ends ----
  if (contents.cancelled) {
    // The operator cancelled this campaign before the restart; recovery
    // rebuilds its partial report but must not resume its spend.
    // (`user_cancelled` stays false, so no duplicate cancel record.)
    Finalize(c, CampaignState::kCancelled, "");
    return id;
  }
  if (options_.deterministic) {
    DriveDeterministic(c);
    return id;
  }
  if (c->runtime.done() && c->pending.empty()) {
    Finalize(c, CampaignState::kDone, "");
    return id;
  }
  // Rejoin the fleet under the recovered scheduling class (journaled in
  // the SubmitRecord); a deadline restarts from the recovery clock.
  scheduler_->Register(id, ScheduleParams{c->priority, c->deadline_seconds});
  if (!c->pending.empty()) {
    // The tail of the last recorded batch never completed before the
    // crash; hand it to the live completion source now.
    c->tasks.clear();
    c->tasks.reserve(c->pending.size());
    uint64_t seq = c->next_apply_seq;
    for (core::ResourceId resource : c->pending) {
      c->tasks.push_back(TaskHandle{c->id, resource, seq++});
    }
    PublishStatus(c);
    if (!source_->SubmitTasks(c->tasks, c->completion_fn)) {
      Finalize(c, CampaignState::kFailed, kSourceClosedError);
      return id;
    }
  }
  PublishStatus(c);
  // Keep the token and hand the campaign to the scheduler; the dispatch
  // steps it from the replayed state (draining whatever the source
  // completed inline).
  EnqueueDispatch(c);
  return id;
}

void CampaignManager::Shutdown() {
  // The flag must be set before the sweep locks the shards (see the
  // matching comment in TryRegister); call_once makes concurrent or
  // repeated Shutdown calls block until the one real teardown completes,
  // so no caller can join the pool while another is still sweeping.
  shutdown_.store(true);
  std::call_once(shutdown_once_, [this] {
    // Drop the health exit hook first: after this no storage-recovery
    // edge can call back into a manager that is tearing down.
    if (options_.health != nullptr) options_.health->set_on_exit(nullptr);
    if (pool_ != nullptr) {
      // Sweep every live campaign into cancellation, wait for the steps
      // to finalize them, then drain and join the pool.
      std::vector<Campaign*> live;
      for (const auto& shard : shards_) {
        util::MutexLock lock(&shard->mu);
        for (const auto& [id, campaign] : shard->campaigns) {
          live.push_back(campaign.get());
        }
      }
      for (Campaign* c : live) {
        c->cancel_requested.store(true);
        if (!c->finalized.load()) ScheduleStep(c);
      }
      for (Campaign* c : live) {
        util::MutexLock lock(&c->status_mu);
        while (c->state == CampaignState::kRunning) {
          c->terminal_cv.Wait(&c->status_mu);
        }
      }
      pool_->Shutdown();
    }
    // After the pool: no stepper can enqueue further compactions or
    // syncs. The compactor stops first (its rewrites append nothing, but
    // they swap writer fds the sink is about to fsync), then the sink
    // drains its dirty set — every journaled record is on disk before
    // the campaigns (and their writers) are destroyed.
    if (compactor_ != nullptr) compactor_->Stop();
    if (sink_ != nullptr) sink_->Stop();
  });
}

}  // namespace service
}  // namespace incentag
