#include "src/service/campaign_manager.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <utility>

#include "src/core/campaign_runtime.h"
#include "src/util/stopwatch.h"

namespace incentag {
namespace service {

// All mutable campaign state. Ownership of the non-const parts is split
// three ways, so a step never contends with anything but its own inbox:
//   * stepper-owned: runtime, reorder buffer, pending deque, seq counters
//     — touched only by the thread holding the `scheduled` token;
//   * inbox: completed seqs from tagger threads, guarded by inbox_mu;
//   * published: the status snapshot + terminal report, guarded by
//     status_mu, written at step boundaries and read by pollers/waiters.
struct CampaignManager::Campaign {
  Campaign(CampaignId id_in, CampaignConfig config_in)
      : id(id_in),
        config(std::move(config_in)),
        strategy_name(config.strategy->name()),
        runtime(config.options, config.initial_posts, config.references) {}

  const CampaignId id;
  CampaignConfig config;
  // Cached at submit time: pollers must not call name() on a strategy a
  // stepper thread is concurrently mutating.
  const std::string strategy_name;

  // ---- stepper-owned (guarded by the `scheduled` token) ----
  core::CampaignRuntime runtime;
  bool begun = false;
  // Assignment order of in-flight tasks; front corresponds to next_apply.
  std::deque<core::ResourceId> pending;
  // Completed seqs waiting for their predecessors (min-heap by seq).
  std::priority_queue<uint64_t, std::vector<uint64_t>,
                      std::greater<uint64_t>>
      reorder;
  uint64_t next_assign_seq = 0;
  uint64_t next_apply_seq = 0;
  std::vector<core::ResourceId> batch;
  std::vector<TaskHandle> tasks;
  util::Stopwatch started;

  // ---- scheduling token ----
  // True while a step is scheduled or running; whoever flips false->true
  // owns the right (and duty) to submit the next step.
  std::atomic<bool> scheduled{false};
  std::atomic<bool> cancel_requested{false};
  std::atomic<bool> finalized{false};

  // ---- completion inbox (MPSC: taggers produce, the stepper drains) ----
  std::mutex inbox_mu;
  std::vector<uint64_t> inbox;

  // ---- published snapshot + terminal state ----
  mutable std::mutex status_mu;
  std::condition_variable terminal_cv;
  CampaignState state = CampaignState::kRunning;
  core::AllocationMetrics metrics;
  int64_t budget_spent = 0;
  int64_t tasks_completed = 0;
  int64_t tasks_in_flight = 0;
  size_t checkpoints_recorded = 0;
  double elapsed_seconds = 0.0;
  std::string error;
  core::RunReport report;
};

// One registry shard: a mutex plus the campaigns hashed to it. Campaigns
// are never erased before the manager is destroyed, so a pointer obtained
// under the shard lock stays valid afterwards.
struct CampaignManager::Shard {
  mutable std::mutex mu;
  std::unordered_map<CampaignId, std::unique_ptr<Campaign>> campaigns;
};

CampaignManager::CampaignManager(ManagerOptions options)
    : options_(options) {
  if (options_.num_shards <= 0) options_.num_shards = 1;
  if (options_.tasks_per_step <= 0) options_.tasks_per_step = 1;
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.completions != nullptr) {
    source_ = options_.completions;
  } else {
    inline_source_ = std::make_unique<InlineCompletionSource>();
    source_ = inline_source_.get();
  }
  if (!options_.deterministic) {
    const int threads = options_.num_threads > 0
                            ? options_.num_threads
                            : util::DefaultThreadCount();
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
}

CampaignManager::~CampaignManager() { Shutdown(); }

int CampaignManager::num_threads() const {
  return pool_ == nullptr ? 0 : pool_->num_threads();
}

size_t CampaignManager::num_campaigns() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->campaigns.size();
  }
  return n;
}

CampaignManager::Campaign* CampaignManager::Find(CampaignId id) const {
  const Shard& shard =
      *shards_[id % static_cast<CampaignId>(shards_.size())];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.campaigns.find(id);
  return it == shard.campaigns.end() ? nullptr : it->second.get();
}

util::Result<CampaignId> CampaignManager::Submit(CampaignConfig config) {
  if (config.initial_posts == nullptr || config.references == nullptr) {
    return util::Status::InvalidArgument(
        "campaign needs initial posts and references");
  }
  if (config.initial_posts->size() != config.references->size()) {
    return util::Status::InvalidArgument(
        "initial posts / references size mismatch");
  }
  if (config.strategy == nullptr || config.stream == nullptr) {
    return util::Status::InvalidArgument(
        "campaign needs a strategy and a post stream");
  }
  const CampaignId id = next_id_.fetch_add(1);
  auto campaign = std::make_unique<Campaign>(id, std::move(config));
  Campaign* raw = campaign.get();
  {
    Shard& shard = *shards_[id % static_cast<CampaignId>(shards_.size())];
    std::lock_guard<std::mutex> lock(shard.mu);
    // Checked under the shard lock so Submit and Shutdown's sweep cannot
    // miss each other: Shutdown sets the flag before locking the shards,
    // so either this read sees it (reject) or the sweep's later snapshot
    // of this shard sees the campaign (cancel it).
    if (shutdown_.load()) {
      return util::Status::FailedPrecondition("manager is shut down");
    }
    shard.campaigns.emplace(id, std::move(campaign));
  }
  if (options_.deterministic) {
    RunDeterministic(raw);
  } else {
    ScheduleStep(raw);
  }
  return id;
}

// The deterministic fallback: the exact driver AllocationEngine::Run uses,
// inline on the submitting thread — reports are byte-identical to the
// synchronous engine for identical inputs.
void CampaignManager::RunDeterministic(Campaign* c) {
  c->scheduled.store(true);  // the submitting thread is the stepper
  util::Status status =
      c->runtime.Begin(c->config.strategy.get(), c->config.stream.get());
  if (status.ok()) {
    c->begun = true;
    std::vector<core::ResourceId>& batch = c->batch;
    while (!c->runtime.done()) {
      status = c->runtime.DrawBatch(&batch);
      if (!status.ok()) break;
      if (batch.empty()) break;
      for (core::ResourceId chosen : batch) {
        c->runtime.ApplyCompletion(chosen);
      }
    }
  }
  if (!status.ok()) {
    Finalize(c, CampaignState::kFailed, status.ToString());
  } else {
    Finalize(c, CampaignState::kDone, "");
  }
}

void CampaignManager::ScheduleStep(Campaign* c) {
  if (!c->scheduled.exchange(true)) {
    if (!pool_->Submit([this, c] { Step(c); })) {
      // Pool already shut down (late completion during teardown); the
      // campaign was or will be finalized by Shutdown's cancel sweep.
      c->scheduled.store(false);
    }
  }
}

void CampaignManager::OnCompletion(Campaign* c, uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(c->inbox_mu);
    c->inbox.push_back(seq);
  }
  if (!c->finalized.load()) ScheduleStep(c);
}

// One scheduling quantum of a campaign. Exactly one thread runs Step for
// a given campaign at a time (the `scheduled` token); all stepper-owned
// state is therefore lock-free to touch.
void CampaignManager::Step(Campaign* c) {
  if (c->finalized.load()) return;

  if (!c->begun) {
    util::Status status =
        c->runtime.Begin(c->config.strategy.get(), c->config.stream.get());
    if (!status.ok()) {
      Finalize(c, CampaignState::kFailed, status.ToString());
      return;
    }
    c->begun = true;
  }

  std::vector<uint64_t> drained;
  int64_t applied = 0;
  for (;;) {
    if (c->cancel_requested.load()) {
      Finalize(c, CampaignState::kCancelled, "");
      return;
    }

    // Drain the inbox into the reorder buffer, then apply every
    // completion that is next in assignment order.
    drained.clear();
    {
      std::lock_guard<std::mutex> lock(c->inbox_mu);
      drained.swap(c->inbox);
    }
    for (uint64_t seq : drained) c->reorder.push(seq);
    while (applied < options_.tasks_per_step && !c->reorder.empty() &&
           c->reorder.top() == c->next_apply_seq) {
      c->reorder.pop();
      const core::ResourceId resource = c->pending.front();
      c->pending.pop_front();
      c->runtime.ApplyCompletion(resource);
      ++c->next_apply_seq;
      ++applied;
    }

    if (c->runtime.done() && c->pending.empty()) {
      Finalize(c, CampaignState::kDone, "");
      return;
    }

    if (applied >= options_.tasks_per_step) {
      // Quantum exhausted: yield the worker so other campaigns run, but
      // keep the token — we know there is more to do right now.
      PublishStatus(c);
      if (!pool_->Submit([this, c] { Step(c); })) {
        c->scheduled.store(false);  // teardown; cancel sweep finalizes
      }
      return;
    }

    // Assignment phase: a new batch is drawn only once the previous one
    // is fully applied, mirroring the synchronous engine's semantics.
    if (!c->runtime.done() && c->pending.empty()) {
      util::Status status = c->runtime.DrawBatch(&c->batch);
      if (!status.ok()) {
        Finalize(c, CampaignState::kFailed, status.ToString());
        return;
      }
      if (c->batch.empty()) continue;  // stopped early; loop finalizes
      c->tasks.clear();
      c->tasks.reserve(c->batch.size());
      for (core::ResourceId resource : c->batch) {
        c->tasks.push_back(TaskHandle{c->id, resource, c->next_assign_seq});
        c->pending.push_back(resource);
        ++c->next_assign_seq;
      }
      PublishStatus(c);
      // May complete some tasks synchronously (inline source): their
      // callbacks land in the inbox and the next loop iteration applies
      // them. The token stays with us, so re-schedule attempts by those
      // callbacks are cheap no-ops.
      source_->SubmitTasks(
          c->tasks, [this, c](const TaskHandle& task) {
            OnCompletion(c, task.seq);
          });
      continue;
    }

    // Waiting on external completions: publish progress and release the
    // token, then re-check the inbox — a completion may have raced in
    // between the drain above and the release.
    PublishStatus(c);
    c->scheduled.store(false);
    bool inbox_nonempty;
    {
      std::lock_guard<std::mutex> lock(c->inbox_mu);
      inbox_nonempty = !c->inbox.empty();
    }
    if ((inbox_nonempty || c->cancel_requested.load()) &&
        !c->scheduled.exchange(true)) {
      if (!pool_->Submit([this, c] { Step(c); })) {
        c->scheduled.store(false);
      }
    }
    return;
  }
}

void CampaignManager::PublishStatus(Campaign* c) {
  std::lock_guard<std::mutex> lock(c->status_mu);
  c->metrics = c->runtime.Metrics();
  c->budget_spent = c->runtime.spent();
  c->tasks_completed = c->runtime.tasks_completed();
  c->tasks_in_flight = static_cast<int64_t>(c->pending.size());
  c->checkpoints_recorded = c->runtime.checkpoints_recorded();
  c->elapsed_seconds = c->started.ElapsedSeconds();
}

void CampaignManager::Finalize(Campaign* c, CampaignState state,
                               std::string error) {
  // Keep the token forever: no further steps can be scheduled, and late
  // completions are dropped in OnCompletion via `finalized`.
  {
    std::lock_guard<std::mutex> lock(c->status_mu);
    c->state = state;
    c->error = std::move(error);
    if (c->begun && state != CampaignState::kFailed) {
      c->report = c->runtime.Finish();
      // A cancellation that left budget unspent stopped the run early in
      // the RunReport sense, even though the strategy never declined.
      if (state == CampaignState::kCancelled &&
          c->report.budget_spent < c->config.options.budget) {
        c->report.stopped_early = true;
      }
      c->metrics = c->report.final_metrics;
      c->budget_spent = c->report.budget_spent;
      c->tasks_completed = c->runtime.tasks_completed();
      c->checkpoints_recorded = c->report.checkpoints.size();
    }
    c->tasks_in_flight = static_cast<int64_t>(c->pending.size());
    c->elapsed_seconds = c->started.ElapsedSeconds();
  }
  c->finalized.store(true);
  c->terminal_cv.notify_all();
}

util::Status CampaignManager::Cancel(CampaignId id) {
  Campaign* c = Find(id);
  if (c == nullptr) return util::Status::NotFound("no such campaign");
  c->cancel_requested.store(true);
  if (!options_.deterministic && !c->finalized.load()) ScheduleStep(c);
  return util::Status::OK();
}

util::Result<CampaignStatus> CampaignManager::Status(CampaignId id) const {
  const Campaign* c = Find(id);
  if (c == nullptr) return util::Status::NotFound("no such campaign");
  CampaignStatus out;
  out.id = c->id;
  out.name = c->config.name;
  out.strategy = c->strategy_name;
  out.budget = c->config.options.budget;
  std::lock_guard<std::mutex> lock(c->status_mu);
  out.state = c->state;
  out.budget_spent = c->budget_spent;
  out.tasks_completed = c->tasks_completed;
  out.tasks_in_flight = c->tasks_in_flight;
  out.metrics = c->metrics;
  out.checkpoints_recorded = c->checkpoints_recorded;
  out.elapsed_seconds = c->elapsed_seconds;
  out.tasks_per_second =
      c->elapsed_seconds > 0.0
          ? static_cast<double>(c->tasks_completed) / c->elapsed_seconds
          : 0.0;
  out.error = c->error;
  return out;
}

std::vector<CampaignStatus> CampaignManager::StatusAll() const {
  std::vector<CampaignId> ids;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, campaign] : shard->campaigns) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<CampaignStatus> out;
  out.reserve(ids.size());
  for (CampaignId id : ids) {
    auto status = Status(id);
    if (status.ok()) out.push_back(std::move(status).value());
  }
  return out;
}

util::Result<core::RunReport> CampaignManager::Wait(CampaignId id) {
  Campaign* c = Find(id);
  if (c == nullptr) return util::Status::NotFound("no such campaign");
  std::unique_lock<std::mutex> lock(c->status_mu);
  c->terminal_cv.wait(
      lock, [c] { return c->state != CampaignState::kRunning; });
  if (c->state == CampaignState::kFailed) {
    return util::Status::Internal("campaign failed: " + c->error);
  }
  return c->report;
}

void CampaignManager::WaitAll() {
  std::vector<CampaignId> ids;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, campaign] : shard->campaigns) ids.push_back(id);
  }
  for (CampaignId id : ids) Wait(id);
}

void CampaignManager::Shutdown() {
  // The flag must be set before the sweep locks the shards (see the
  // matching comment in Submit); call_once makes concurrent or repeated
  // Shutdown calls block until the one real teardown completes, so no
  // caller can join the pool while another is still sweeping.
  shutdown_.store(true);
  std::call_once(shutdown_once_, [this] {
    if (pool_ == nullptr) return;  // deterministic mode: nothing running
    // Sweep every live campaign into cancellation, wait for the steps to
    // finalize them, then drain and join the pool.
    std::vector<Campaign*> live;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [id, campaign] : shard->campaigns) {
        live.push_back(campaign.get());
      }
    }
    for (Campaign* c : live) {
      c->cancel_requested.store(true);
      if (!c->finalized.load()) ScheduleStep(c);
    }
    for (Campaign* c : live) {
      std::unique_lock<std::mutex> lock(c->status_mu);
      c->terminal_cv.wait(
          lock, [c] { return c->state != CampaignState::kRunning; });
    }
    pool_->Shutdown();
  });
}

}  // namespace service
}  // namespace incentag
