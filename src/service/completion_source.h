// CompletionSource: the crowd-platform boundary of the service layer.
//
// A CampaignManager draws assignment batches (paper Algorithm 1 step 5 /
// the Figure-2 "post tasks" arrow) and hands each task to a
// CompletionSource — the abstraction of the tagger crowd. The source
// completes tasks asynchronously by invoking the campaign's callback,
// possibly from other threads and possibly out of assignment order; the
// manager's per-campaign reorder buffer restores assignment order before
// the completion is applied, so results stay independent of tagger timing.
//
// Completion delivery is batch-shaped (ISSUE 5): real folksonomy
// workloads arrive in bursts per resource/community (cf.
// arXiv:2104.01028), so the callback takes a span of completed tasks —
// the receiving campaign pays one inbox lock per burst, not per task. A
// source that completes tasks one at a time simply delivers spans of
// length 1; nothing about ordering or timing changes.
//
// Implementations that ship:
//   * InlineCompletionSource (here): taggers finish instantly, inside
//     SubmitTasks, the whole batch as one span — the synchronous world
//     of Algorithm 1.
//   * sim::CrowdLoadGenerator (src/sim/load_generator.h): a pool of
//     simulated tagger threads with configurable per-task latency and
//     per-tagger completion buffers.
//   * persist::ReplayCompletionSource: re-drives a recorded trace.
#ifndef INCENTAG_SERVICE_COMPLETION_SOURCE_H_
#define INCENTAG_SERVICE_COMPLETION_SOURCE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/core/types.h"

namespace incentag {
namespace service {

// Identifies a campaign within one CampaignManager.
using CampaignId = uint64_t;

// One assigned post task in flight between assignment and completion.
struct TaskHandle {
  CampaignId campaign = 0;
  core::ResourceId resource = core::kInvalidResource;
  // Per-campaign assignment sequence number; the manager applies
  // completions in seq order regardless of arrival order.
  uint64_t seq = 0;
};

class CompletionSource {
 public:
  virtual ~CompletionSource() = default;

  // Invoked by the source with one or more finished tasks — every task
  // exactly once across all invocations, in any grouping, from any
  // thread. A single invocation must only carry tasks that were
  // submitted with this callback (callbacks are per-campaign; the span
  // lands in one campaign's inbox). The span is only valid for the
  // duration of the call. Must be cheap and non-blocking.
  using CompletionFn = std::function<void(std::span<const TaskHandle>)>;

  // Accepts a batch of assigned tasks. May block (backpressure), may
  // complete some or all tasks synchronously before returning. The
  // callback must not be invoked after the source is stopped/destroyed —
  // quiesce the source before destroying the CampaignManager it feeds.
  //
  // Returns false when the source could not accept the whole batch (it
  // was stopped/closed): some tasks will never complete, and the manager
  // finalizes the campaign as kFailed instead of leaving it kRunning
  // forever waiting on completions that cannot arrive.
  virtual bool SubmitTasks(const std::vector<TaskHandle>& tasks,
                           const CompletionFn& done) = 0;
};

// Instant taggers: the whole batch completes synchronously inside
// SubmitTasks, on the submitting thread, as a single completion span.
// The default source of CampaignManager.
class InlineCompletionSource : public CompletionSource {
 public:
  bool SubmitTasks(const std::vector<TaskHandle>& tasks,
                   const CompletionFn& done) override {
    if (!tasks.empty()) done(std::span<const TaskHandle>(tasks));
    return true;
  }
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_COMPLETION_SOURCE_H_
