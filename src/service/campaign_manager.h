// CampaignManager: concurrent multi-campaign service layer.
//
// The paper evaluates one campaign at a time; a production tagging
// platform runs many — one per community/vocabulary/budget (cf.
// arXiv:2104.01028, arXiv:2104.08504) — fed by asynchronous task
// completions from the crowd. CampaignManager owns N independent
// campaigns (each an EngineOptions + Strategy + PostStream + per-resource
// states wrapped in a core::CampaignRuntime) and drives them concurrently
// on a fixed util::ThreadPool with an event-driven lifecycle:
//
//   Submit(config)                       -> campaign id, step scheduled
//   step: drain completion inbox         -> apply in assignment order
//         batch done?                    -> Strategy::Choose/OnAssigned,
//                                           tasks to the CompletionSource
//   completion callback (any thread)     -> per-campaign MPSC inbox,
//                                           campaign re-scheduled
//   budget spent / strategy stopped      -> RunReport, waiters notified
//
// Threading model (see src/service/README.md for the full picture):
//   * Campaign state is sharded: the registry is split over S shards with
//     one mutex each, and every mutable campaign structure is per-campaign
//     — the hot path (a campaign step) takes no global lock.
//   * At most one thread steps a given campaign at a time, enforced by an
//     atomic "scheduled" token; the runtime itself is single-threaded.
//   * Completions land in a per-campaign MPSC inbox (mutex + swap-drain)
//     and are re-ordered into assignment order before application, so a
//     campaign's result is independent of tagger timing.
//
// Deterministic mode (ManagerOptions::deterministic) runs each campaign
// synchronously inside Submit on the calling thread, byte-identical to
// AllocationEngine::Run for the same inputs (it drives the same
// CampaignRuntime step protocol in the same order).
#ifndef INCENTAG_SERVICE_CAMPAIGN_MANAGER_H_
#define INCENTAG_SERVICE_CAMPAIGN_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/allocation.h"
#include "src/core/post_stream.h"
#include "src/core/strategy.h"
#include "src/service/completion_source.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace incentag {
namespace service {

// Everything one campaign needs. `initial_posts` and `references` must
// outlive the manager (they are shared, read-only dataset vectors);
// `strategy` and `stream` are owned by the campaign and must not be
// shared across campaigns.
struct CampaignConfig {
  std::string name;
  core::EngineOptions options;
  const std::vector<core::PostSequence>* initial_posts = nullptr;
  const std::vector<core::ResourceReference>* references = nullptr;
  std::unique_ptr<core::Strategy> strategy;
  std::unique_ptr<core::PostStream> stream;
  // Optional keep-alive for auxiliary objects the strategy or stream
  // reference (e.g. the sim::CrowdModel behind FreeChoiceStrategy's
  // picker). Destroyed with the campaign.
  std::shared_ptr<void> context;
};

enum class CampaignState {
  kRunning,    // submitted; stepping or waiting for completions
  kDone,       // budget spent or strategy stopped early; report ready
  kCancelled,  // Cancel() took effect; partial report ready
  kFailed,     // configuration or strategy error; see CampaignStatus::error
};

// A point-in-time snapshot, pollable while the campaign runs.
struct CampaignStatus {
  CampaignId id = 0;
  std::string name;
  std::string strategy;
  CampaignState state = CampaignState::kRunning;
  int64_t budget = 0;
  int64_t budget_spent = 0;
  int64_t tasks_completed = 0;
  // Tasks assigned to the completion source and not yet applied.
  int64_t tasks_in_flight = 0;
  // Latest evaluation snapshot (quality, over/under-tagged, wasted).
  core::AllocationMetrics metrics;
  size_t checkpoints_recorded = 0;
  double elapsed_seconds = 0.0;
  // Completed tasks per wall-clock second since the campaign began.
  double tasks_per_second = 0.0;
  std::string error;
};

struct ManagerOptions {
  // Worker threads; <= 0 means util::DefaultThreadCount(). Ignored in
  // deterministic mode (everything runs on the submitting thread).
  int num_threads = 0;
  // Run campaigns synchronously inside Submit, in submission order,
  // reproducing AllocationEngine::Run exactly.
  bool deterministic = false;
  // Completions applied per scheduling quantum before a campaign yields
  // its worker — the fairness knob between campaign count and latency.
  int64_t tasks_per_step = 256;
  // Tagger crowd; null means an internal InlineCompletionSource. An
  // external source must outlive the manager AND be stopped/quiesced
  // before the manager is destroyed (its callbacks touch manager state).
  CompletionSource* completions = nullptr;
  // Registry shards; more shards = less contention on Submit/Status.
  int num_shards = 16;
};

class CampaignManager {
 public:
  explicit CampaignManager(ManagerOptions options);
  // Implies Shutdown(): campaigns still running are cancelled, not
  // awaited. Call WaitAll() first if you want their reports.
  ~CampaignManager();

  CampaignManager(const CampaignManager&) = delete;
  CampaignManager& operator=(const CampaignManager&) = delete;

  // Registers the campaign and schedules its first step (deterministic
  // mode: runs it to completion before returning). Fails fast on null
  // config fields or mismatched sizes.
  util::Result<CampaignId> Submit(CampaignConfig config);

  // Requests cancellation; takes effect at the campaign's next step
  // boundary. No-op on campaigns already terminal.
  util::Status Cancel(CampaignId id);

  // Snapshot of one campaign / of every campaign, in submission order.
  util::Result<CampaignStatus> Status(CampaignId id) const;
  std::vector<CampaignStatus> StatusAll() const;

  // Blocks until the campaign is terminal. Returns its RunReport (for
  // kCancelled: the partial report, with stopped_early=true whenever the
  // cancellation left budget unspent); kFailed surfaces as an error
  // status.
  util::Result<core::RunReport> Wait(CampaignId id);

  // Blocks until every submitted campaign is terminal.
  void WaitAll();

  // Cancels all running campaigns, waits for their steps to settle and
  // joins the pool. Idempotent; implied by the destructor.
  void Shutdown();

  int num_threads() const;
  size_t num_campaigns() const;

 private:
  struct Campaign;
  struct Shard;

  Campaign* Find(CampaignId id) const;
  void ScheduleStep(Campaign* campaign);
  void Step(Campaign* campaign);
  void RunDeterministic(Campaign* campaign);
  void Finalize(Campaign* campaign, CampaignState state, std::string error);
  void PublishStatus(Campaign* campaign);
  void OnCompletion(Campaign* campaign, uint64_t seq);

  ManagerOptions options_;
  std::unique_ptr<InlineCompletionSource> inline_source_;
  CompletionSource* source_ = nullptr;  // options_.completions or inline
  std::unique_ptr<util::ThreadPool> pool_;  // null in deterministic mode
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<CampaignId> next_id_{1};
  std::atomic<bool> shutdown_{false};
  std::once_flag shutdown_once_;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_CAMPAIGN_MANAGER_H_
