// CampaignManager: concurrent multi-campaign service layer.
//
// The paper evaluates one campaign at a time; a production tagging
// platform runs many — one per community/vocabulary/budget (cf.
// arXiv:2104.01028, arXiv:2104.08504) — fed by asynchronous task
// completions from the crowd. CampaignManager owns N independent
// campaigns (each an EngineOptions + Strategy + PostStream + per-resource
// states wrapped in a core::CampaignRuntime) and drives them concurrently
// on a fixed util::ThreadPool with an event-driven lifecycle:
//
//   Submit(config)                       -> campaign id, step scheduled
//   step: drain completion inbox         -> apply in assignment order
//         batch done?                    -> Strategy::Choose/OnAssigned,
//                                           tasks to the CompletionSource
//   completion span (any thread)         -> per-campaign MPSC inbox (one
//                                           lock per span), campaign
//                                           re-scheduled once
//   budget spent / strategy stopped      -> RunReport, waiters notified
//
// The completion path is batch-shaped end to end (ISSUE 5): sources
// deliver spans of finished tasks, the inbox absorbs a span under one
// lock, the step drains into reusable scratch buffers, applies a whole
// in-order run through CampaignRuntime::ApplyCompletionBatch, and
// journals the run with one JournalWriter::AppendCompletionBatch call
// (arena-encoded, one writer-lock acquisition). See the "hot path"
// section of src/service/README.md.
//
// Threading model (see src/service/README.md for the full picture):
//   * Campaign state is sharded: the registry is split over S shards with
//     one mutex each, and every mutable campaign structure is per-campaign
//     — the hot path (a campaign step) takes no global lock.
//   * At most one thread steps a given campaign at a time, enforced by an
//     atomic "scheduled" token; the runtime itself is single-threaded.
//   * Completions land in a per-campaign MPSC inbox (mutex + swap-drain)
//     and are re-ordered into assignment order before application, so a
//     campaign's result is independent of tagger timing.
//   * Which campaign a free worker steps next — and how many completions
//     it may apply before yielding — is policy, delegated to a pluggable
//     Scheduler (src/service/scheduler/): round-robin (default,
//     pre-scheduler behavior), priority (weighted quanta), or EDF over
//     per-campaign deadlines. Each enqueue of a runnable campaign pairs
//     with one generic dispatch task on the pool; the dispatch pops the
//     scheduler's top-ranked campaign. The scheduler also owns the
//     fleet-wide compaction budget (max_concurrent_compactions).
//
// Deterministic mode (ManagerOptions::deterministic) runs each campaign
// synchronously inside Submit on the calling thread, byte-identical to
// AllocationEngine::Run for the same inputs (it drives the same
// CampaignRuntime step protocol in the same order).
//
// Durability (ManagerOptions::journal_dir): each campaign appends a
// write-ahead journal — one persist::SubmitRecord at Submit, one
// persist::CompletionRecord per applied task — with fsync batched on a
// persist::JournalSink thread. Recover(dir, factory) rebuilds campaigns
// from their journals after a crash: the factory re-attaches the
// non-serializable inputs (dataset pointers, strategy, stream) from the
// journaled SubmitRecord, the manager replays the recorded completions
// through the deterministic step protocol, and the campaign continues
// live from exactly where the journal ends.
#ifndef INCENTAG_SERVICE_CAMPAIGN_MANAGER_H_
#define INCENTAG_SERVICE_CAMPAIGN_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/allocation.h"
#include "src/core/post_stream.h"
#include "src/core/strategy.h"
#include "src/persist/compactor.h"
#include "src/persist/journal.h"
#include "src/persist/journal_sink.h"
#include "src/service/completion_source.h"
#include "src/service/scheduler/scheduler.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace incentag {
namespace service {

class FleetHealth;

// Everything one campaign needs. `initial_posts` and `references` must
// outlive the manager (they are shared, read-only dataset vectors);
// `strategy` and `stream` are owned by the campaign and must not be
// shared across campaigns.
struct CampaignConfig {
  std::string name;
  core::EngineOptions options;
  const std::vector<core::PostSequence>* initial_posts = nullptr;
  const std::vector<core::ResourceReference>* references = nullptr;
  std::unique_ptr<core::Strategy> strategy;
  std::unique_ptr<core::PostStream> stream;
  // Journaled verbatim in the SubmitRecord and handed back to the
  // CampaignFactory at recovery — set it to whatever seed rebuilds this
  // exact strategy/stream pair (e.g. the FC crowd-model seed). Unused by
  // the manager itself.
  uint64_t seed = 0;
  // Optional keep-alive for auxiliary objects the strategy or stream
  // reference (e.g. the sim::CrowdModel behind FreeChoiceStrategy's
  // picker). Destroyed with the campaign.
  std::shared_ptr<void> context;
};

enum class CampaignState {
  kRunning,      // submitted; stepping or waiting for completions
  kDone,         // budget spent or strategy stopped early; report ready
  kCancelled,    // Cancel() took effect; partial report ready
  kFailed,       // configuration, strategy or completion-source error;
                 // see CampaignStatus::error
  kQuarantined,  // the campaign's journal fd went permanently sick
                 // (ISSUE 10): the campaign is frozen with its durable
                 // journal prefix intact and resumable — Recover() on a
                 // healthy disk replays it like a crash tail. No report;
                 // see CampaignStatus::error for the storage error.
};

// A point-in-time snapshot, pollable while the campaign runs.
struct CampaignStatus {
  CampaignId id = 0;
  std::string name;
  std::string strategy;
  CampaignState state = CampaignState::kRunning;
  int64_t budget = 0;
  int64_t budget_spent = 0;
  int64_t tasks_completed = 0;
  // Tasks assigned to the completion source and not yet applied.
  int64_t tasks_in_flight = 0;
  // Latest evaluation snapshot (quality, over/under-tagged, wasted).
  core::AllocationMetrics metrics;
  size_t checkpoints_recorded = 0;
  // Completions replayed from the journal when this campaign was
  // resurrected by Recover — the tail after the latest snapshot for a
  // compacted journal, the whole trace otherwise. 0 for fresh campaigns.
  int64_t records_replayed = 0;
  // Scheduling class (see src/service/scheduler/): the campaign's
  // priority weight and, when it has a deadline, the seconds remaining
  // until it (negative = already missed). Slack freezes at the value it
  // had when the campaign went terminal; 0 when the campaign has no
  // deadline.
  int32_t priority = 1;
  double deadline_slack_seconds = 0.0;
  // Scheduler quanta this campaign has run (1 per Step dispatch;
  // deterministic mode runs a campaign as a single quantum).
  int64_t quanta_run = 0;
  // Time from Submit until the first step ran — scheduler queueing, not
  // campaign work. Zero until the first step.
  double queue_delay_seconds = 0.0;
  // Active time since the campaign's first step (excludes queue delay).
  double elapsed_seconds = 0.0;
  // Completed tasks per active wall-clock second.
  double tasks_per_second = 0.0;
  std::string error;
};

// Fleet listing query (ISSUE 8): pagination window plus optional
// filters. Results are in ascending id order (stable across calls —
// ids are submission-ordered and never reused), so offset/limit pages
// are consistent as long as no new campaigns are submitted in between.
struct ListQuery {
  size_t offset = 0;
  // Page size; capped at kMaxLimit. 0 returns an empty page (with
  // `total` still counting matches — the "how many?" probe).
  size_t limit = 50;
  static constexpr size_t kMaxLimit = 1000;
  // Keep only campaigns in this state.
  std::optional<CampaignState> state;
  // Keep only campaigns whose name contains this substring
  // (case-insensitive ASCII). Empty matches everything.
  std::string search;
};

// One page of the fleet listing. `total` counts every campaign matching
// the filters, not just the page, so clients can paginate blindly.
struct CampaignPage {
  std::vector<CampaignStatus> statuses;
  size_t total = 0;
  size_t offset = 0;
  size_t limit = 0;
};

// Terminal outcome of one campaign, as returned by WaitFor: unlike the
// bare RunReport, the state disambiguates a cancelled-before-start
// campaign from one that genuinely ran (ISSUE 2 satellite).
struct CampaignResult {
  CampaignId id = 0;
  CampaignState state = CampaignState::kRunning;
  // Populated for kDone/kCancelled; for a campaign cancelled before its
  // first step it is synthesized from the config (strategy name, zero
  // allocation, stopped_early) rather than default-constructed.
  core::RunReport report;
  std::string error;  // non-empty for kFailed
};

struct ManagerOptions {
  // Worker threads; <= 0 means util::DefaultThreadCount(). Ignored in
  // deterministic mode (everything runs on the submitting thread).
  int num_threads = 0;
  // Run campaigns synchronously inside Submit, in submission order,
  // reproducing AllocationEngine::Run exactly.
  bool deterministic = false;
  // Completions applied per scheduling quantum before a campaign yields
  // its worker — the fairness knob between campaign count and latency.
  // This is the scheduler's base quantum; PriorityScheduler scales it
  // per campaign (see SchedulerOptions::max_quantum_weight).
  int64_t tasks_per_step = 256;
  // Cross-campaign stepping policy and its knobs (dispatch order,
  // weighted quanta, aging, the fleet-wide compaction budget). The
  // policy defaults to round-robin — byte-identical behavior to the
  // pre-scheduler manager. `scheduler.base_quantum` is overwritten with
  // tasks_per_step. Campaigns carry their own class in
  // core::EngineOptions::priority / deadline_seconds.
  SchedulerOptions scheduler;
  // Tagger crowd; null means an internal InlineCompletionSource. An
  // external source must outlive the manager AND be stopped/quiesced
  // before the manager is destroyed (its callbacks touch manager state).
  CompletionSource* completions = nullptr;
  // Registry shards; more shards = less contention on Submit/Status.
  int num_shards = 16;
  // Non-empty enables the write-ahead journal: one
  // `<journal_dir>/campaign-<id>.journal` per submitted campaign. The
  // directory is created if missing. Submitting reuses (truncates) a
  // stale journal file of the same name, so Recover() from a previous
  // incarnation's directory must happen before new Submits into it.
  std::string journal_dir;
  // Coalescing window of the background fsync batcher (see
  // persist::JournalSinkOptions).
  int64_t journal_batch_interval_us = 500;
  // Journal compaction triggers. When a campaign is due, the stepper
  // serializes a checkpoint snapshot of its resumable state at a step
  // boundary and (after admission by the scheduler's fleet-wide
  // CompactionBudget) hands the journal to the persist::Compactor, which
  // rewrites it as `submit + snapshot + tail`; recovery then seeks to
  // the snapshot and replays only the tail — bounded-time restarts for
  // long campaigns. Deterministic mode compacts inline.
  //
  // The primary trigger is journal *bytes* accumulated since the last
  // snapshot — bytes are what recovery has to read and replay, and what
  // the rewrite has to copy, so they track the real cost better than a
  // record count. 0 disables the bytes trigger.
  int64_t compact_journal_bytes = 0;
  // Fallback/legacy trigger: every n applied completions. Both triggers
  // may be set; whichever fires first wins. 0 disables it. With both 0,
  // only explicit Compact(id) rewrites journals.
  int64_t compact_every_n_completions = 0;
  // Retry ladder for transient journal-sync failures, forwarded to the
  // sink's fsync domain (ISSUE 10; see persist::SyncRetryPolicy).
  persist::SyncRetryPolicy journal_retry;
  // Fleet storage-health tracker (ISSUE 10). When set: journal sync
  // outcomes feed it; while it reports degraded, background-class
  // campaigns (priority <= 1) park at their next step boundary instead
  // of running, and compaction triggers aggressively to reclaim journal
  // bytes. The manager claims the tracker's on_exit hook to resume
  // parked campaigns the moment storage recovers. Must outlive the
  // manager; share one instance with the HTTP layer so intake sheds
  // writes over the same signal. Optional — null disables degraded
  // mode (sick writers still quarantine their campaigns).
  FleetHealth* health = nullptr;
};

class CampaignManager {
 public:
  // Rebuilds the non-serializable parts of a campaign from its journaled
  // SubmitRecord during Recover: dataset pointers, strategy (record.
  // strategy_name + record.seed), stream, and any CostModel. The
  // returned config's `options` should normally be taken from
  // `record.options` unchanged — recovery replay is only byte-identical
  // if the engine options match the original run.
  using CampaignFactory = std::function<util::Result<CampaignConfig>(
      const persist::SubmitRecord& record)>;

  explicit CampaignManager(ManagerOptions options);
  // Implies Shutdown(): campaigns still running are cancelled, not
  // awaited. Call WaitAll() first if you want their reports.
  ~CampaignManager();

  CampaignManager(const CampaignManager&) = delete;
  CampaignManager& operator=(const CampaignManager&) = delete;

  // Registers the campaign and schedules its first step (deterministic
  // mode: runs it to completion before returning). Fails fast on null
  // config fields or mismatched sizes. With journaling enabled the
  // SubmitRecord is fsynced before the campaign is registered, so a
  // crash at any later point can recover it.
  util::Result<CampaignId> Submit(CampaignConfig config);

  // Scans `dir` for campaign journals and resurrects each one: reads its
  // SubmitRecord + completion trace (tolerating a torn/corrupt tail,
  // which is truncated), asks `factory` for a fresh CampaignConfig,
  // seeks to the latest checkpoint snapshot (format v2) when one exists
  // — restoring the serialized runtime/strategy/stream state, then
  // replaying only the tail — and otherwise replays the whole trace
  // through the deterministic step protocol; Algorithm 1's determinism
  // makes either path byte-identical to the pre-crash run. The campaign
  // then resumes live, appending new completions to the same journal. A
  // snapshot whose record does not decode falls back to full replay
  // when the trace still starts at seq 0 and fails the campaign when
  // its prefix was compacted away. Files without an
  // intact SubmitRecord (a crash between journal creation and the submit
  // fsync) are skipped. Returns the new ids in journal-file order; a
  // journal that diverges from the replay finalizes its campaign as
  // kFailed rather than failing the whole recovery. A journal named
  // `campaign-<id>.journal` resurrects under its original id (ids are
  // stable across restarts) and next_id_ advances past it, so later
  // Submits never reuse a recovered journal file. Every journal is
  // parsed and run through the factory before any campaign is resumed,
  // so an error return means no side effects (and a rare IO failure
  // mid-resume is retryable: already-resumed journals are skipped).
  // Call from one thread, before submitting new campaigns.
  util::Result<std::vector<CampaignId>> Recover(const std::string& dir,
                                                const CampaignFactory& factory);

  // Requests cancellation; takes effect at the campaign's next step
  // boundary (a campaign whose first step has not run yet is cancelled
  // before Begin, and its report synthesized from the config). No-op on
  // campaigns already terminal.
  util::Status Cancel(CampaignId id);

  // Requests a one-off journal compaction, independent of
  // compact_every_n_completions; the snapshot is taken at the campaign's
  // next step boundary and the rewrite runs on the compactor thread.
  // Fails on unjournaled or already-terminal campaigns.
  util::Status Compact(CampaignId id);

  // Snapshot of one campaign.
  util::Result<CampaignStatus> Status(CampaignId id) const;

  // Paginated, filterable fleet listing in ascending id order. Touches
  // only the shard registries and each listed campaign's status_mu —
  // never an inbox lock — so listing cannot stall the completion hot
  // path. The query surface every client (HTTP, campaign_server
  // rollups, tests) goes through.
  CampaignPage List(const ListQuery& query) const;

  // Blocks until the campaign is terminal. Returns its RunReport (for
  // kCancelled: the partial report, with stopped_early=true whenever the
  // cancellation left budget unspent); kFailed surfaces as an error
  // status.
  util::Result<core::RunReport> Wait(CampaignId id);

  // Bounded Wait: blocks at most `timeout`, then DeadlineExceeded — so
  // callers never hang forever on a wedged campaign. On success the
  // CampaignResult carries the terminal state alongside the report
  // (kFailed is a valid result here, not an error status).
  util::Result<CampaignResult> WaitFor(CampaignId id,
                                       std::chrono::milliseconds timeout);

  // Blocks until every submitted campaign is terminal.
  void WaitAll();

  // Cancels all running campaigns, waits for their steps to settle,
  // joins the pool and stops the journal sink (final fsync included).
  // Idempotent; implied by the destructor.
  void Shutdown();

  int num_threads() const;
  size_t num_campaigns() const;

  // The stepping policy in force (read-only; owned by the manager).
  // Exposes the fleet-wide CompactionBudget counters for tests and
  // operator dashboards.
  const Scheduler& scheduler() const { return *scheduler_; }

 private:
  struct Campaign;
  struct Shard;

  Campaign* Find(CampaignId id) const;
  util::Status TryRegister(CampaignId id,
                           std::unique_ptr<Campaign> campaign);
  void ScheduleStep(Campaign* campaign);
  void EnqueueDispatch(Campaign* campaign);
  void DispatchStep();
  void Step(Campaign* campaign);
  void RunDeterministic(Campaign* campaign);
  void DriveDeterministic(Campaign* campaign);
  util::Result<CampaignId> RecoverOne(const std::string& path,
                                      const persist::JournalContents& contents,
                                      CampaignConfig config);
  void Finalize(Campaign* campaign, CampaignState state, std::string error);
  void PublishStatus(Campaign* campaign);
  void OnCompletionBatch(Campaign* campaign,
                         std::span<const TaskHandle> tasks);
  // Applies the collected apply_run to the runtime and journals it as
  // one batch; returns false (campaign finalized kFailed) on a journal
  // error. Caller advances nothing on failure.
  bool ApplyRun(Campaign* campaign);
  void FlushJournal(Campaign* campaign);
  void MaybeCompact(Campaign* campaign);
  void EnsureJournalWorkers();
  // Freezes a campaign as kQuarantined: journal untracked from the sink
  // (its durable prefix stays resumable on disk), scheduler entry and
  // compaction budget dropped, waiters notified. Unlike Finalize, never
  // syncs through the (sick) fd and produces no report.
  void Quarantine(Campaign* campaign, std::string error);
  // Sink-thread callback: the retry ladder gave up on `writer`. Flags
  // the owning campaign for quarantine at its next step boundary.
  void OnWriterSick(persist::JournalWriter* writer,
                    const util::Status& status);
  // FleetHealth on_exit hook: reschedules every parked campaign.
  void ResumeParked();

  ManagerOptions options_;
  std::unique_ptr<InlineCompletionSource> inline_source_;
  CompletionSource* source_ = nullptr;  // options_.completions or inline
  // The stepping policy: ready queue, per-campaign quanta and the
  // fleet-wide compaction budget. Never null; deterministic mode only
  // uses its compaction budget (campaigns run inline, no ready queue).
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<util::ThreadPool> pool_;  // null in deterministic mode
  std::unique_ptr<persist::JournalSink> sink_;  // null unless journaling
  // Background journal rewriter; null in deterministic mode (compaction
  // then runs inline on the driving thread) and until journaling is on.
  std::unique_ptr<persist::Compactor> compactor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Journal files already resumed by Recover (single-threaded access —
  // see Recover's contract); makes a retried Recover skip them.
  std::unordered_set<std::string> recovered_paths_;
  // True once any fleet commit log in journal_dir has been replayed into
  // its journals (constructor) — the precondition for the sink's fsync
  // domain to open (and truncate) a fresh log there.
  bool commit_log_recovered_ = false;
  std::atomic<CampaignId> next_id_{1};
  std::atomic<bool> shutdown_{false};
  std::once_flag shutdown_once_;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_CAMPAIGN_MANAGER_H_
