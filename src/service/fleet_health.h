// FleetHealth: hysteresis between storage failures and fleet degraded
// mode (ISSUE 10).
//
// The journal sink reports every sync outcome here. Sustained transient
// storage failure (ENOSPC and friends, classified by
// util::ClassifyIoError) flips the fleet into degraded mode after
// enter_after_failures consecutive failed attempts; exit_after_successes
// consecutive successful syncs flip it back. While degraded:
//
//   * the scheduler parks background-class campaigns (admission pause),
//   * HTTP intake sheds writes with 503 + Retry-After while status and
//     metrics reads keep serving,
//   * compaction triggers aggressively to reclaim journal bytes.
//
// Both transitions are counted and exported
// (incentag_service_degraded_mode gauge, ..._entries_total /
// ..._exits_total counters) so an operator can see flap rates, and the
// exit edge invokes an optional callback so the campaign manager can
// reschedule parked campaigns immediately instead of waiting for the
// next completion to poke them.
//
// Thread-safe. degraded() is a single relaxed atomic load — it sits on
// the HTTP hot path and the scheduler step path.
#ifndef INCENTAG_SERVICE_FLEET_HEALTH_H_
#define INCENTAG_SERVICE_FLEET_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace service {

struct FleetHealthOptions {
  // Consecutive transient storage failures that enter degraded mode.
  int enter_after_failures = 3;
  // Consecutive successful syncs that exit it.
  int exit_after_successes = 2;
  // Advertised to shed clients via the Retry-After header.
  int retry_after_seconds = 5;
};

class FleetHealth {
 public:
  explicit FleetHealth(FleetHealthOptions options = {});

  FleetHealth(const FleetHealth&) = delete;
  FleetHealth& operator=(const FleetHealth&) = delete;

  // True while the fleet is shedding writes. Relaxed load; hot path.
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  int retry_after_seconds() const { return options_.retry_after_seconds; }

  // A sync attempt failed. Only transient classifications count toward
  // entering degraded mode: a permanent error is one writer's problem
  // (quarantine territory), not the storage stack's.
  void ReportStorageError(const util::Status& status) EXCLUDES(mu_);

  // A sync succeeded; enough of these in a row exit degraded mode.
  void ReportStorageOk() EXCLUDES(mu_);

  // Invoked (with no FleetHealth locks held) on every degraded->healthy
  // edge. Set before the first report; not synchronised against them.
  void set_on_exit(std::function<void()> on_exit) {
    on_exit_ = std::move(on_exit);
  }

  // Transition counts, for tests.
  int64_t entries() const EXCLUDES(mu_);
  int64_t exits() const EXCLUDES(mu_);

 private:
  const FleetHealthOptions options_;
  std::atomic<bool> degraded_{false};
  std::function<void()> on_exit_;
  mutable util::Mutex mu_;
  int consecutive_failures_ GUARDED_BY(mu_) = 0;
  int consecutive_successes_ GUARDED_BY(mu_) = 0;
  int64_t entries_ GUARDED_BY(mu_) = 0;
  int64_t exits_ GUARDED_BY(mu_) = 0;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_FLEET_HEALTH_H_
