// ExternalCompletionSource: the CompletionSource whose taggers live on
// the other side of the network (ISSUE 8).
//
// The in-process sources complete tasks themselves; here completions
// arrive from outside — HTTP POSTs carrying `{seq, resource}` spans —
// and the source's job is the *intake discipline*: park what the
// manager assigns, match arrivals against the parked set, and make
// at-least-once delivery safe. The contract per (campaign, seq):
//
//   parked, resource matches     -> delivered (once); flows into the
//                                   campaign's inbox via the stored
//                                   CompletionFn
//   parked, resource mismatch    -> invalid (the caller sent a resource
//                                   that was never assigned that seq)
//   not parked, seq below floor  -> duplicate: already applied — by this
//                                   incarnation, or journaled by a
//                                   previous one. Idempotent no-op.
//   not parked, seq at/above the
//   assignment watermark         -> unknown: never assigned
//
// The dedup floor needs no explicit persistence: every SubmitTasks
// batch arrives in ascending seq order starting exactly where the
// journal left off (fresh campaigns at 0; recovered campaigns at the
// journaled high-water seq, because CampaignManager::Recover re-assigns
// the pending tail from `next_apply_seq`), so the floor ratchets to
// each batch's first seq and the journal stays the source of truth.
// A batch re-POSTed after a crash therefore splits into "duplicate"
// (journaled before the crash) and "delivered" (parked again by
// recovery) — and the re-delivered spans recreate the pre-crash state
// byte-identically (tests/http/ingest_test.cc holds that).
//
// Threading: Complete() may run on any edge worker; Submit runs on
// stepper threads. State is per-campaign (own mutex per entry) so
// campaigns never contend, and the CompletionFn is invoked outside the
// entry lock — it takes the campaign's inbox lock inside the manager.
#ifndef INCENTAG_SERVICE_EXTERNAL_SOURCE_H_
#define INCENTAG_SERVICE_EXTERNAL_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"
#include "src/service/completion_source.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace service {

// One completion as reported from outside.
struct ExternalCompletion {
  uint64_t seq = 0;
  core::ResourceId resource = core::kInvalidResource;
};

// Per-batch intake accounting, the response body of the completions
// endpoint: how each span member was classified.
struct IntakeResult {
  size_t delivered = 0;   // Newly applied (parked tasks matched).
  size_t duplicates = 0;  // Already applied; idempotent no-ops.
  size_t unknown = 0;     // Seq never assigned (yet) — client error.
  size_t invalid = 0;     // Seq assigned, but to a different resource.
};

class ExternalCompletionSource : public CompletionSource {
 public:
  ExternalCompletionSource() = default;

  ExternalCompletionSource(const ExternalCompletionSource&) = delete;
  ExternalCompletionSource& operator=(const ExternalCompletionSource&) =
      delete;

  // CompletionSource: parks the batch for its campaign and remembers
  // `done` (one callback per campaign — the manager always passes the
  // same one). Never completes anything synchronously.
  bool SubmitTasks(const std::vector<TaskHandle>& tasks,
                   const CompletionFn& done) override;

  // Intake for one POSTed batch. Delivers every parked match to the
  // campaign as a single span (one inbox lock), classifies the rest.
  // Safe to call concurrently from any number of edge workers, and
  // idempotent: re-sending a batch moves its members from `delivered`
  // to `duplicates` and changes nothing else.
  //
  // `applied_floor` is an external lower bound on what the journal
  // already holds — the route handler passes the campaign's
  // tasks_completed, closing the one window SubmitTasks cannot see: a
  // recovered campaign with nothing left pending never re-assigns, so
  // its entry here starts empty and a re-POST of the final pre-crash
  // batch would otherwise read as unknown instead of duplicate.
  IntakeResult Complete(CampaignId campaign,
                        const std::vector<ExternalCompletion>& batch,
                        uint64_t applied_floor = 0);

  // Tasks parked (assigned, not yet completed) for `campaign`; the
  // pull-side endpoint serves these to taggers. At most `max` entries in
  // ascending seq order.
  std::vector<TaskHandle> Pending(CampaignId campaign, size_t max) const;

  // After Stop, SubmitTasks returns false (the manager fails campaigns
  // instead of waiting forever) and Complete classifies everything
  // without delivering. Call before destroying the manager.
  void Stop();

 private:
  struct Entry {
    mutable util::Mutex mu;
    // Assigned and awaiting an external completion.
    std::unordered_map<uint64_t, core::ResourceId> parked GUARDED_BY(mu);
    // Everything below this seq was delivered (or journaled by a prior
    // incarnation). Ratchets to each Submit batch's first seq.
    uint64_t dedup_floor GUARDED_BY(mu) = 0;
    // One past the highest seq ever parked.
    uint64_t assign_watermark GUARDED_BY(mu) = 0;
    CompletionFn done GUARDED_BY(mu);
  };

  // Existing entry or a freshly inserted one; pointer stable (entries
  // are never erased — a campaign's entry is a few hundred bytes).
  Entry* GetEntry(CampaignId campaign);
  const Entry* FindEntry(CampaignId campaign) const;

  mutable util::Mutex map_mu_;
  std::unordered_map<CampaignId, std::unique_ptr<Entry>> entries_
      GUARDED_BY(map_mu_);
  bool stopped_ GUARDED_BY(map_mu_) = false;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_EXTERNAL_SOURCE_H_
