#include "src/service/fleet_health.h"

#include "src/obs/metrics.h"

namespace incentag {
namespace service {

namespace {

obs::Gauge* DegradedGauge() {
  static obs::Gauge* gauge = obs::Registry::Default().GetGauge(
      "incentag_service_degraded_mode",
      "One while the fleet is in storage degraded mode, else zero");
  return gauge;
}

obs::Counter* EntriesCounter() {
  static obs::Counter* counter = obs::Registry::Default().GetCounter(
      "incentag_service_degraded_entries_total",
      "Transitions into storage degraded mode");
  return counter;
}

obs::Counter* ExitsCounter() {
  static obs::Counter* counter = obs::Registry::Default().GetCounter(
      "incentag_service_degraded_exits_total",
      "Transitions out of storage degraded mode");
  return counter;
}

}  // namespace

FleetHealth::FleetHealth(FleetHealthOptions options) : options_(options) {
  DegradedGauge()->Set(0);
}

void FleetHealth::ReportStorageError(const util::Status& status) {
  if (util::ClassifyIoError(status) != util::IoErrorClass::kTransient) {
    return;
  }
  util::MutexLock lock(&mu_);
  consecutive_successes_ = 0;
  ++consecutive_failures_;
  if (degraded_.load(std::memory_order_relaxed)) return;
  if (consecutive_failures_ < options_.enter_after_failures) return;
  degraded_.store(true, std::memory_order_relaxed);
  ++entries_;
  DegradedGauge()->Set(1);
  EntriesCounter()->Increment();
}

void FleetHealth::ReportStorageOk() {
  bool exited = false;
  {
    util::MutexLock lock(&mu_);
    consecutive_failures_ = 0;
    if (!degraded_.load(std::memory_order_relaxed)) return;
    ++consecutive_successes_;
    if (consecutive_successes_ < options_.exit_after_successes) return;
    consecutive_successes_ = 0;
    degraded_.store(false, std::memory_order_relaxed);
    ++exits_;
    DegradedGauge()->Set(0);
    ExitsCounter()->Increment();
    exited = true;
  }
  // Outside mu_: the callback reschedules parked campaigns, which may
  // take manager locks that themselves report back here.
  if (exited && on_exit_) on_exit_();
}

int64_t FleetHealth::entries() const {
  util::MutexLock lock(&mu_);
  return entries_;
}

int64_t FleetHealth::exits() const {
  util::MutexLock lock(&mu_);
  return exits_;
}

}  // namespace service
}  // namespace incentag
