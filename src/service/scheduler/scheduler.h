// Scheduler: pluggable cross-campaign stepping policy for the service
// layer.
//
// The paper's incentive campaigns are budgeted, long-lived processes; a
// production fleet runs hundreds of them against a fixed worker pool, and
// "which campaign steps next, and for how long" is policy, not plumbing
// (cf. the budget/deadline pacing concerns of arXiv:1709.00197 and
// arXiv:2104.08504). A Scheduler owns two decisions the CampaignManager
// used to hard-code:
//
//   * dispatch order — the ready queue of runnable campaigns. The manager
//     enqueues a campaign when it becomes runnable (submitted, completion
//     arrived, quantum expired) and pairs each Enqueue with one generic
//     dispatch task on the worker pool; the dispatch pops whichever
//     campaign the policy ranks first. Round-robin pops FIFO (exactly the
//     pre-scheduler pool order), priority pops the highest weight,
//     deadline pops earliest-deadline-first (EDF).
//   * quantum size — how many completions the popped campaign may apply
//     before it must yield its worker. Round-robin and EDF use the base
//     quantum (ManagerOptions::tasks_per_step); priority scales it by the
//     campaign's weight so high-priority campaigns do proportionally more
//     work per trip through the queue.
//
// Starvation: both ranked policies age entries — every time PopNext
// passes an entry over, its effective rank improves — and enforce a hard
// bound (starvation_limit): an entry skipped that many times is popped
// next regardless of rank, so a low-priority campaign under sustained
// high-priority load still finishes.
//
// The scheduler is also the fleet-wide compaction governor: it owns the
// CompactionBudget that caps concurrent journal rewrites (the manager's
// MaybeCompact asks it for admission before handing a job to the
// persist::Compactor), so N campaigns never rewrite N journals at once.
//
// Thread model: every method is thread-safe. The ready queue is split
// over num_shards shards, one mutex each — a campaign is pinned to
// shard (id % num_shards) and PopNext work-steals across shards from a
// rotating start — so concurrent dispatches at high thread counts do not
// serialize on a single scheduler mutex (the bottleneck the ROADMAP
// flagged after PR 4). Enqueue and PopNext are called under the
// manager's per-campaign scheduled-token protocol, so a campaign is in
// the ready queue at most once at a time.
// None of this affects deterministic mode, which runs campaigns
// synchronously inside Submit and never touches the ready queue — its
// byte-identity to AllocationEngine::Run holds under every policy.
#ifndef INCENTAG_SERVICE_SCHEDULER_SCHEDULER_H_
#define INCENTAG_SERVICE_SCHEDULER_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/service/completion_source.h"
#include "src/service/scheduler/compaction_budget.h"
#include "src/util/status.h"

namespace incentag {
namespace service {

enum class SchedulerPolicy {
  kRoundRobin,  // FIFO ready queue, uniform quanta (the PR 1 behavior)
  kPriority,    // weighted quanta + highest-priority-first dispatch
  kDeadline,    // earliest-deadline-first dispatch, uniform quanta
};

// Scheduling class of one campaign, registered when it joins the fleet
// (mirrors core::EngineOptions::priority / deadline_seconds, which travel
// with the campaign through the journal and recovery).
struct ScheduleParams {
  // Weight for PriorityScheduler: quantum multiplier and dispatch rank.
  // Clamped to >= 1; 1 is the background/baseline class.
  int32_t priority = 1;
  // Relative completion deadline in seconds from registration (Submit, or
  // Recover — recovery restarts the clock); <= 0 means no deadline.
  double deadline_seconds = 0.0;
};

struct SchedulerOptions {
  SchedulerPolicy policy = SchedulerPolicy::kRoundRobin;
  // Completions a campaign may apply per quantum before yielding its
  // worker; the CampaignManager sets this from tasks_per_step.
  int64_t base_quantum = 256;
  // Ready-queue shards. A campaign is pinned to shard (id % num_shards);
  // PopNext starts at a rotating shard and steals from the others when
  // its first pick is empty, so concurrent dispatches rarely contend on
  // one mutex. Policy order (FIFO / rank / starvation aging) holds
  // *within* a shard — the steal scan takes the first non-empty shard
  // rather than comparing ranks across all of them, which is the
  // standard work-stealing trade. <= 0 means 1 (a single global queue,
  // exactly the pre-sharding semantics). The CampaignManager defaults
  // round-robin to its worker-thread count and the ranked policies to
  // 1: per-shard FIFO is all RR ever promised, but priority/EDF
  // dispatch order is the product — shard those only when the dispatch
  // rate genuinely outruns one mutex and per-shard rank order is an
  // acceptable trade.
  int num_shards = 0;
  // PriorityScheduler: effective quantum = base_quantum * priority,
  // capped at base_quantum * max_quantum_weight so one campaign cannot
  // monopolize a worker for an unbounded stretch.
  int64_t max_quantum_weight = 64;
  // Aging, per skipped pop: a passed-over entry gains this many priority
  // points (PriorityScheduler) / moves its effective deadline this many
  // seconds earlier (DeadlineScheduler).
  double priority_aging_per_skip = 0.5;
  double deadline_aging_seconds_per_skip = 0.05;
  // Hard starvation bound: an entry passed over this many times is popped
  // next regardless of its rank. <= 0 disables the bound (aging still
  // applies).
  int64_t starvation_limit = 64;
  // Fleet-wide compaction budget: at most this many journal rewrites in
  // flight across all campaigns; <= 0 means unlimited (see
  // CompactionBudget).
  int max_concurrent_compactions = 0;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options)
      : options_(options), budget_(options.max_concurrent_compactions) {}
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual const char* name() const = 0;

  // Fleet membership. Register is called once when the campaign is
  // submitted or recovered; Unregister when it goes terminal (it also
  // drops any ready-queue entry and pending compaction request).
  virtual void Register(CampaignId id, const ScheduleParams& params) = 0;
  virtual void Unregister(CampaignId id) = 0;

  // Marks `id` runnable. The manager's scheduled-token protocol
  // guarantees a campaign is enqueued at most once until popped.
  virtual void Enqueue(CampaignId id) = 0;

  // Pops the campaign the next free worker should step, per policy; 0
  // when the queue is empty.
  virtual CampaignId PopNext() = 0;

  // Completions the next step of `id` may apply before yielding.
  virtual int64_t Quantum(CampaignId id) = 0;

  // The fleet-wide compaction governor (shared by every policy).
  CompactionBudget& compaction_budget() { return budget_; }
  const CompactionBudget& compaction_budget() const { return budget_; }

  const SchedulerOptions& options() const { return options_; }

 protected:
  const SchedulerOptions options_;

 private:
  CompactionBudget budget_;
};

// Builds the policy named by `options.policy`.
std::unique_ptr<Scheduler> MakeScheduler(const SchedulerOptions& options);

// "rr" | "priority" | "edf" -> policy, for --scheduler flags.
util::Result<SchedulerPolicy> ParseSchedulerPolicy(const std::string& name);
const char* SchedulerPolicyName(SchedulerPolicy policy);

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_SCHEDULER_H_
