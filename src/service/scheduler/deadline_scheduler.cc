#include "src/service/scheduler/deadline_scheduler.h"

namespace incentag {
namespace service {

double DeadlineScheduler::DeadlineOf(CampaignId id) const {
  auto it = deadlines_.find(id);
  return it == deadlines_.end() ? kNoDeadline : it->second;
}

void DeadlineScheduler::Register(CampaignId id,
                                 const ScheduleParams& params) {
  std::lock_guard<std::mutex> lock(mu_);
  deadlines_[id] = params.deadline_seconds > 0.0
                       ? clock_.ElapsedSeconds() + params.deadline_seconds
                       : kNoDeadline;
}

void DeadlineScheduler::ForgetParamsLocked(CampaignId id) {
  deadlines_.erase(id);
}

// Earliest (aged) deadline pops first.
double DeadlineScheduler::RankKey(const Entry& entry) const {
  return DeadlineOf(entry.id) -
         options_.deadline_aging_seconds_per_skip *
             static_cast<double>(entry.skips);
}

int64_t DeadlineScheduler::Quantum(CampaignId) {
  return options_.base_quantum;
}

}  // namespace service
}  // namespace incentag
