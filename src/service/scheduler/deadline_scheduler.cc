#include "src/service/scheduler/deadline_scheduler.h"

namespace incentag {
namespace service {

// Earliest (aged) deadline pops first.
double DeadlineScheduler::RankKey(const Entry& entry,
                                  const CampaignParams& params) const {
  return params.deadline -
         options_.deadline_aging_seconds_per_skip *
             static_cast<double>(entry.skips);
}

int64_t DeadlineScheduler::QuantumFor(const CampaignParams&) const {
  return options_.base_quantum;
}

}  // namespace service
}  // namespace incentag
