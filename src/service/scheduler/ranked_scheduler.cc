#include "src/service/scheduler/ranked_scheduler.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace incentag {
namespace service {

RankedScheduler::CampaignParams RankedScheduler::ParamsOfLocked(
    const Shard& shard, CampaignId id) const {
  auto it = shard.params.find(id);
  return it == shard.params.end() ? CampaignParams{} : it->second;
}

void RankedScheduler::Register(CampaignId id, const ScheduleParams& params) {
  CampaignParams normalized;
  normalized.priority = std::max<int32_t>(1, params.priority);
  normalized.deadline = params.deadline_seconds > 0.0
                            ? clock_.ElapsedSeconds() + params.deadline_seconds
                            : kNoDeadline;
  Shard& shard = shards_.ShardOf(id);
  util::MutexLock lock(&shard.mu);
  shard.params[id] = normalized;
}

void RankedScheduler::Enqueue(CampaignId id) {
  // Count-then-insert: see ShardRing's liveness contract.
  shards_.NoteEnqueued();
  Shard& shard = shards_.ShardOf(id);
  util::MutexLock lock(&shard.mu);
  shard.ready.push_back(Entry{id, shard.next_tick++, 0});
}

bool RankedScheduler::PopsBeforeLocked(const Shard& shard, const Entry& a,
                                       const Entry& b) const {
  // Hard starvation bound dominates rank; among starving, oldest wins.
  const int64_t limit = options_.starvation_limit;
  const bool a_starving = limit > 0 && a.skips >= limit;
  const bool b_starving = limit > 0 && b.skips >= limit;
  if (a_starving != b_starving) return a_starving;
  if (a_starving) return a.tick < b.tick;
  const double a_key = RankKey(a, ParamsOfLocked(shard, a.id));
  const double b_key = RankKey(b, ParamsOfLocked(shard, b.id));
  if (a_key != b_key) return a_key < b_key;
  return a.tick < b.tick;
}

CampaignId RankedScheduler::PopNext() {
  const int64_t limit = options_.starvation_limit;
  CampaignId popped = 0;
  shards_.PopScan([&](Shard& shard) {
    util::MutexLock lock(&shard.mu);
    if (shard.ready.empty()) return false;
    size_t best = 0;
    for (size_t i = 1; i < shard.ready.size(); ++i) {
      if (PopsBeforeLocked(shard, shard.ready[i], shard.ready[best])) {
        best = i;
      }
    }
    if (limit > 0 && shard.ready[best].skips >= limit) {
      static obs::Counter* starvation_pops =
          obs::Registry::Default().GetCounter(
              "incentag_scheduler_starvation_pops_total",
              "Pops forced by the starvation backstop instead of rank");
      starvation_pops->Increment();
    }
    popped = shard.ready[best].id;
    shard.ready.erase(shard.ready.begin() + static_cast<ptrdiff_t>(best));
    for (Entry& e : shard.ready) ++e.skips;
    return true;
  });
  return popped;
}

void RankedScheduler::Unregister(CampaignId id) {
  Shard& shard = shards_.ShardOf(id);
  int64_t erased = 0;
  {
    util::MutexLock lock(&shard.mu);
    const auto end =
        std::remove_if(shard.ready.begin(), shard.ready.end(),
                       [id](const Entry& e) { return e.id == id; });
    erased = shard.ready.end() - end;
    shard.ready.erase(end, shard.ready.end());
    shard.params.erase(id);
  }
  shards_.NoteRemoved(erased);
}

int64_t RankedScheduler::Quantum(CampaignId id) {
  Shard& shard = shards_.ShardOf(id);
  util::MutexLock lock(&shard.mu);
  return QuantumFor(ParamsOfLocked(shard, id));
}

}  // namespace service
}  // namespace incentag
