#include "src/service/scheduler/ranked_scheduler.h"

#include <algorithm>

namespace incentag {
namespace service {

void RankedScheduler::Enqueue(CampaignId id) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_.push_back(Entry{id, next_tick_++, 0});
}

CampaignId RankedScheduler::PopNext() {
  std::lock_guard<std::mutex> lock(mu_);
  if (ready_.empty()) return 0;
  const int64_t limit = options_.starvation_limit;
  auto pops_before = [&](const Entry& a, const Entry& b) {
    // Hard starvation bound dominates rank; among starving, oldest wins.
    const bool a_starving = limit > 0 && a.skips >= limit;
    const bool b_starving = limit > 0 && b.skips >= limit;
    if (a_starving != b_starving) return a_starving;
    if (a_starving) return a.tick < b.tick;
    const double a_key = RankKey(a);
    const double b_key = RankKey(b);
    if (a_key != b_key) return a_key < b_key;
    return a.tick < b.tick;
  };
  size_t best = 0;
  for (size_t i = 1; i < ready_.size(); ++i) {
    if (pops_before(ready_[i], ready_[best])) best = i;
  }
  const CampaignId id = ready_[best].id;
  ready_.erase(ready_.begin() + static_cast<ptrdiff_t>(best));
  for (Entry& e : ready_) ++e.skips;
  return id;
}

void RankedScheduler::Unregister(CampaignId id) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                              [id](const Entry& e) { return e.id == id; }),
               ready_.end());
  ForgetParamsLocked(id);
}

}  // namespace service
}  // namespace incentag
