// RankedScheduler: the shared sharded ready-queue machinery of the
// ranked policies (priority, deadline).
//
// Both policies pop by a per-entry rank that changes as the entry waits
// (aging) and both enforce the same hard starvation bound, so the Entry
// bookkeeping, the pop scan, the shard/steal layout and Unregister live
// here once; a concrete policy supplies only its rank key and quantum
// rule over the registered CampaignParams. The linear pop scan per shard
// is deliberate: ready size is bounded by the campaign count, and ranks
// move on every pop — a heap's keys would be stale the moment they were
// inserted.
//
// Sharding (ISSUE 5; see shard_ring.h): entries and the campaign's
// registered parameters live on shard (id % num_shards), one mutex
// each. PopNext starts at a rotating shard and steals from the next
// non-empty one; within the shard it scans, steal order = rank order
// (starving-oldest first, then best rank), and every passed-over entry
// of that shard gains a skip — aging and the starvation bound keep
// their semantics per shard. One shard (the default: the
// CampaignManager only auto-shards round-robin, because a ranked
// policy's cross-campaign order is its product and first-non-empty
// stealing weakens it to per-shard order) reproduces the old global
// ordering exactly; num_shards > 1 is the explicit throughput-over-
// strict-order trade for fleets whose dispatch rate outruns one mutex.
#ifndef INCENTAG_SERVICE_SCHEDULER_RANKED_SCHEDULER_H_
#define INCENTAG_SERVICE_SCHEDULER_RANKED_SCHEDULER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/service/scheduler/scheduler.h"
#include "src/service/scheduler/shard_ring.h"
#include "src/util/mutex.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace service {

class RankedScheduler : public Scheduler {
 public:
  explicit RankedScheduler(const SchedulerOptions& options)
      : Scheduler(options), shards_(options.num_shards) {}

  // Stores the campaign's parameters (priority clamped to >= 1; a
  // positive relative deadline becomes absolute on the scheduler's own
  // clock) on its shard.
  void Register(CampaignId id, const ScheduleParams& params) final;
  void Enqueue(CampaignId id) final;
  // Pops the best entry of the first non-empty shard, starting from a
  // rotating shard: within that shard, the smallest rank key wins, but
  // among entries past starvation_limit the oldest wins regardless of
  // rank. Every passed-over entry of the scanned shard gains a skip,
  // which the policies turn into aging via their rank keys.
  CampaignId PopNext() final;
  // Drops the campaign's ready entries and parameters from its shard.
  void Unregister(CampaignId id) final;
  int64_t Quantum(CampaignId id) final;

 protected:
  struct Entry {
    CampaignId id = 0;
    uint64_t tick = 0;  // FIFO tie-break: lower = enqueued earlier
    int64_t skips = 0;  // times PopNext passed this entry over
  };

  // Registered scheduling class of one campaign, normalized once: both
  // ranked policies draw their keys from these two fields.
  struct CampaignParams {
    int32_t priority = 1;
    // Absolute deadline in seconds on the scheduler's clock;
    // kNoDeadline when the campaign has none.
    double deadline = kNoDeadline;
  };

  static constexpr double kNoDeadline = 1e18;

  // Rank key of a ready entry; SMALLER pops first. Called with the
  // entry's shard lock held.
  virtual double RankKey(const Entry& entry,
                         const CampaignParams& params) const = 0;
  // Completions one quantum of this campaign may apply.
  virtual int64_t QuantumFor(const CampaignParams& params) const = 0;

 private:
  struct alignas(64) Shard {
    util::Mutex mu;
    std::vector<Entry> ready GUARDED_BY(mu);
    std::unordered_map<CampaignId, CampaignParams> params GUARDED_BY(mu);
    // Ticks are only ever compared shard-locally.
    uint64_t next_tick GUARDED_BY(mu) = 0;
  };

  // Params of `id` with its shard lock held; defaults for unregistered
  // campaigns (priority 1, no deadline).
  CampaignParams ParamsOfLocked(const Shard& shard, CampaignId id) const
      REQUIRES(shard.mu);

  // PopNext's pick order within one locked shard: does `a` pop before
  // `b`? A member (not a lambda inside the scan) so the analysis can
  // tie the required capability to the `shard` parameter.
  bool PopsBeforeLocked(const Shard& shard, const Entry& a,
                        const Entry& b) const REQUIRES(shard.mu);

  ShardRing<Shard> shards_;
  // Base of the absolute-deadline clock, so comparisons never involve
  // "now".
  util::Stopwatch clock_;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_RANKED_SCHEDULER_H_
