// RankedScheduler: the shared ready-queue machinery of the ranked
// policies (priority, deadline).
//
// Both policies pop by a per-entry rank that changes as the entry waits
// (aging) and both enforce the same hard starvation bound, so the Entry
// bookkeeping, the pop scan and Unregister live here once; a concrete
// policy supplies only its rank key (and its per-campaign parameters).
// The linear pop scan is deliberate: ready size is bounded by the
// campaign count, and ranks move on every pop — a heap's keys would be
// stale the moment they were inserted.
#ifndef INCENTAG_SERVICE_SCHEDULER_RANKED_SCHEDULER_H_
#define INCENTAG_SERVICE_SCHEDULER_RANKED_SCHEDULER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/service/scheduler/scheduler.h"

namespace incentag {
namespace service {

class RankedScheduler : public Scheduler {
 public:
  explicit RankedScheduler(const SchedulerOptions& options)
      : Scheduler(options) {}

  void Enqueue(CampaignId id) final;
  // Pops the smallest rank key; among entries past starvation_limit, the
  // oldest wins regardless of rank. Every passed-over entry gains a
  // skip, which the policies turn into aging via their rank keys.
  CampaignId PopNext() final;
  // Drops the campaign's ready entries, then its policy parameters
  // (ForgetParamsLocked).
  void Unregister(CampaignId id) final;

 protected:
  struct Entry {
    CampaignId id = 0;
    uint64_t tick = 0;  // FIFO tie-break: lower = enqueued earlier
    int64_t skips = 0;  // times PopNext passed this entry over
  };

  // Rank key of a ready entry; SMALLER pops first. Called with mu_ held.
  virtual double RankKey(const Entry& entry) const = 0;
  // Erase the campaign's policy parameters. Called with mu_ held.
  virtual void ForgetParamsLocked(CampaignId id) = 0;

  // Guards the ready queue and the policies' parameter maps.
  mutable std::mutex mu_;

 private:
  std::vector<Entry> ready_;
  uint64_t next_tick_ = 0;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_RANKED_SCHEDULER_H_
