// PriorityScheduler: weighted quanta + highest-priority-first dispatch.
//
// A campaign's priority (>= 1) buys it two things: PopNext ranks it above
// lower-priority ready campaigns, and its quantum is base_quantum *
// priority (capped at base_quantum * max_quantum_weight), so a
// priority-8 campaign applies ~8x the completions per trip through the
// ready queue. Ties and equal ranks dispatch FIFO.
//
// Starvation control: every entry PopNext passes over gains
// priority_aging_per_skip effective priority points, so a long-waiting
// background campaign eventually outranks fresh high-priority arrivals;
// independently, an entry skipped starvation_limit times is popped next
// unconditionally (RankedScheduler, which also owns the sharded
// ready-queue/steal layout). Aging state resets when the campaign is
// popped.
#ifndef INCENTAG_SERVICE_SCHEDULER_PRIORITY_SCHEDULER_H_
#define INCENTAG_SERVICE_SCHEDULER_PRIORITY_SCHEDULER_H_

#include <cstdint>

#include "src/service/scheduler/ranked_scheduler.h"

namespace incentag {
namespace service {

class PriorityScheduler : public RankedScheduler {
 public:
  explicit PriorityScheduler(const SchedulerOptions& options)
      : RankedScheduler(options) {}

  const char* name() const override { return "priority"; }

 protected:
  double RankKey(const Entry& entry,
                 const CampaignParams& params) const override;
  int64_t QuantumFor(const CampaignParams& params) const override;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_PRIORITY_SCHEDULER_H_
