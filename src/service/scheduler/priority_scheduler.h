// PriorityScheduler: weighted quanta + highest-priority-first dispatch.
//
// A campaign's priority (>= 1) buys it two things: PopNext ranks it above
// lower-priority ready campaigns, and its quantum is base_quantum *
// priority (capped at base_quantum * max_quantum_weight), so a
// priority-8 campaign applies ~8x the completions per trip through the
// ready queue. Ties and equal ranks dispatch FIFO.
//
// Starvation control: every entry PopNext passes over gains
// priority_aging_per_skip effective priority points, so a long-waiting
// background campaign eventually outranks fresh high-priority arrivals;
// independently, an entry skipped starvation_limit times is popped next
// unconditionally (RankedScheduler). Aging state resets when the
// campaign is popped.
#ifndef INCENTAG_SERVICE_SCHEDULER_PRIORITY_SCHEDULER_H_
#define INCENTAG_SERVICE_SCHEDULER_PRIORITY_SCHEDULER_H_

#include <cstdint>
#include <unordered_map>

#include "src/service/scheduler/ranked_scheduler.h"

namespace incentag {
namespace service {

class PriorityScheduler : public RankedScheduler {
 public:
  explicit PriorityScheduler(const SchedulerOptions& options)
      : RankedScheduler(options) {}

  const char* name() const override { return "priority"; }

  void Register(CampaignId id, const ScheduleParams& params) override;
  int64_t Quantum(CampaignId id) override;

 protected:
  double RankKey(const Entry& entry) const override;
  void ForgetParamsLocked(CampaignId id) override;

 private:
  int32_t PriorityOf(CampaignId id) const;  // callers hold mu_

  std::unordered_map<CampaignId, int32_t> priorities_;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_PRIORITY_SCHEDULER_H_
