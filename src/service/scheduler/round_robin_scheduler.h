// RoundRobinScheduler: FIFO dispatch, uniform quanta — the policy the
// CampaignManager hard-coded before the scheduler subsystem existed.
// Every runnable campaign waits its turn in submission-of-work order and
// applies at most base_quantum completions per turn; priority and
// deadline parameters are accepted and ignored.
//
// The ready queue is sharded (SchedulerOptions::num_shards; see
// shard_ring.h): a campaign always enqueues to shard (id % N), and
// PopNext starts at a rotating shard, stealing from the next ones when
// its first pick is empty. With one shard (the default for directly
// constructed schedulers) this is exactly the old single-mutex FIFO;
// with N shards FIFO order holds per shard, which is all the
// round-robin guarantee ever promised once pops race on a pool anyway —
// that is why the CampaignManager shards THIS policy by default but
// leaves the ranked ones global.
#ifndef INCENTAG_SERVICE_SCHEDULER_ROUND_ROBIN_SCHEDULER_H_
#define INCENTAG_SERVICE_SCHEDULER_ROUND_ROBIN_SCHEDULER_H_

#include <deque>

#include "src/service/scheduler/scheduler.h"
#include "src/service/scheduler/shard_ring.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace service {

class RoundRobinScheduler : public Scheduler {
 public:
  explicit RoundRobinScheduler(const SchedulerOptions& options)
      : Scheduler(options), shards_(options.num_shards) {}

  const char* name() const override { return "rr"; }

  void Register(CampaignId id, const ScheduleParams& params) override;
  void Unregister(CampaignId id) override;
  void Enqueue(CampaignId id) override;
  CampaignId PopNext() override;
  int64_t Quantum(CampaignId id) override;

 private:
  struct alignas(64) Shard {
    util::Mutex mu;
    std::deque<CampaignId> ready GUARDED_BY(mu);
  };

  ShardRing<Shard> shards_;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_ROUND_ROBIN_SCHEDULER_H_
