// RoundRobinScheduler: FIFO dispatch, uniform quanta — the exact policy
// the CampaignManager hard-coded before the scheduler subsystem existed.
// Every runnable campaign waits its turn in submission-of-work order and
// applies at most base_quantum completions per turn; priority and
// deadline parameters are accepted and ignored.
#ifndef INCENTAG_SERVICE_SCHEDULER_ROUND_ROBIN_SCHEDULER_H_
#define INCENTAG_SERVICE_SCHEDULER_ROUND_ROBIN_SCHEDULER_H_

#include <deque>
#include <mutex>

#include "src/service/scheduler/scheduler.h"

namespace incentag {
namespace service {

class RoundRobinScheduler : public Scheduler {
 public:
  explicit RoundRobinScheduler(const SchedulerOptions& options)
      : Scheduler(options) {}

  const char* name() const override { return "rr"; }

  void Register(CampaignId id, const ScheduleParams& params) override;
  void Unregister(CampaignId id) override;
  void Enqueue(CampaignId id) override;
  CampaignId PopNext() override;
  int64_t Quantum(CampaignId id) override;

 private:
  std::mutex mu_;
  std::deque<CampaignId> ready_;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_ROUND_ROBIN_SCHEDULER_H_
