// ShardRing<Shard>: the shared shard layout of the sharded ready queues
// (ISSUE 5).
//
// Both RoundRobinScheduler and RankedScheduler split their ready state
// over N shards — a campaign pinned to shard (id % N), pops starting at
// a rotating shard and stealing clockwise — and only differ in what a
// shard holds and how an entry is picked from it. The storage, the
// pin-by-id lookup, the rotating steal scan and the emptiness
// accounting live here once, so a future change to the layout (say
// NUMA-aware shard pinning, a ROADMAP follow-on) lands in one place.
//
// Liveness: the manager pairs every Enqueue with exactly one dispatch
// and relies on "a dispatch pops SOMETHING whenever an entry exists".
// A single non-atomic pass over the shards cannot promise that — the
// scan can visit shard B before an entry lands there while a concurrent
// dispatch steals the scanner's own entry from shard A, and the entry
// in B would be stranded with its campaign's scheduled token still
// held. PopScan therefore retries the pass until it pops or the queued
// counter proves the ring empty. The counter is maintained so that
// queued() >= (entries actually present) at every instant — callers
// increment BEFORE inserting (NoteEnqueued) and decrement only AFTER
// removing (PopScan itself on a successful pop; NoteRemoved for bulk
// erase) — so reading 0 is proof that nothing is stranded, and the
// retry loop terminates as soon as the last removal's decrement lands.
//
// Locking stays with the caller: a Shard carries its own mutex and the
// visitor decides what to do under it.
#ifndef INCENTAG_SERVICE_SCHEDULER_SHARD_RING_H_
#define INCENTAG_SERVICE_SCHEDULER_SHARD_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/metrics.h"
#include "src/service/completion_source.h"

namespace incentag {
namespace service {

template <typename Shard>
class ShardRing {
 public:
  explicit ShardRing(int num_shards) {
    const int n = num_shards < 1 ? 1 : num_shards;
    shards_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  }

  size_t size() const { return shards_.size(); }

  // The shard campaign `id` is pinned to — Enqueue/Unregister/params
  // lookups always land here, so per-campaign state never straddles
  // shards.
  Shard& ShardOf(CampaignId id) { return *shards_[id % shards_.size()]; }

  // Call BEFORE inserting a ready entry into a shard (the ordering is
  // what makes queued() an upper bound; see the header comment).
  void NoteEnqueued() { queued_.fetch_add(1, std::memory_order_release); }

  // Call AFTER bulk-removing `n` ready entries (Unregister). Successful
  // PopScan visits are accounted automatically.
  void NoteRemoved(int64_t n) {
    if (n > 0) queued_.fetch_sub(n, std::memory_order_release);
  }

  // Work-stealing pop: visits shards starting at a rotating cursor
  // (spreading concurrent pops across the shard mutexes) until `visit`
  // returns true — it must then have removed exactly one entry under
  // the shard's lock. A fruitless pass retries while entries remain
  // anywhere, so a pop that raced with a steal can never strand a
  // queued entry. Returns false only when the ring is provably empty.
  template <typename Visitor>
  bool PopScan(Visitor&& visit) {
    static obs::Counter* steals = obs::Registry::Default().GetCounter(
        "incentag_scheduler_steals_total",
        "Pops satisfied from a shard other than the scan's start shard");
    const size_t n = shards_.size();
    for (;;) {
      const uint64_t start =
          cursor_.fetch_add(1, std::memory_order_relaxed);
      for (size_t i = 0; i < n; ++i) {
        if (visit(*shards_[(start + i) % n])) {
          if (i > 0) steals->Increment();
          queued_.fetch_sub(1, std::memory_order_release);
          return true;
        }
      }
      if (queued_.load(std::memory_order_acquire) == 0) return false;
    }
  }

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> cursor_{0};
  std::atomic<int64_t> queued_{0};
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_SHARD_RING_H_
