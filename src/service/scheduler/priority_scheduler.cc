#include "src/service/scheduler/priority_scheduler.h"

#include <algorithm>

namespace incentag {
namespace service {

int32_t PriorityScheduler::PriorityOf(CampaignId id) const {
  auto it = priorities_.find(id);
  return it == priorities_.end() ? 1 : it->second;
}

void PriorityScheduler::Register(CampaignId id,
                                 const ScheduleParams& params) {
  std::lock_guard<std::mutex> lock(mu_);
  priorities_[id] = std::max<int32_t>(1, params.priority);
}

void PriorityScheduler::ForgetParamsLocked(CampaignId id) {
  priorities_.erase(id);
}

// Smaller pops first, so the rank is the negated effective priority.
double PriorityScheduler::RankKey(const Entry& entry) const {
  return -(PriorityOf(entry.id) +
           options_.priority_aging_per_skip *
               static_cast<double>(entry.skips));
}

int64_t PriorityScheduler::Quantum(CampaignId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t weight = std::min<int64_t>(
      std::max<int64_t>(1, options_.max_quantum_weight), PriorityOf(id));
  return options_.base_quantum * weight;
}

}  // namespace service
}  // namespace incentag
