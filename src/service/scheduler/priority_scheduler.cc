#include "src/service/scheduler/priority_scheduler.h"

#include <algorithm>

namespace incentag {
namespace service {

// Smaller pops first, so the rank is the negated effective priority.
double PriorityScheduler::RankKey(const Entry& entry,
                                  const CampaignParams& params) const {
  return -(params.priority +
           options_.priority_aging_per_skip *
               static_cast<double>(entry.skips));
}

int64_t PriorityScheduler::QuantumFor(const CampaignParams& params) const {
  const int64_t weight = std::min<int64_t>(
      std::max<int64_t>(1, options_.max_quantum_weight), params.priority);
  return options_.base_quantum * weight;
}

}  // namespace service
}  // namespace incentag
