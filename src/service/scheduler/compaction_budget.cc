#include "src/service/scheduler/compaction_budget.h"

#include <algorithm>

namespace incentag {
namespace service {

bool CompactionBudget::Request(CampaignId id, int64_t bytes) {
  util::MutexLock lock(&mu_);
  if (max_concurrent_ <= 0) {
    ++in_flight_;
    max_in_flight_ = std::max(max_in_flight_, in_flight_);
    ++admitted_;
    pending_.erase(id);
    return true;
  }
  pending_[id] = bytes;
  if (in_flight_ >= static_cast<int64_t>(max_concurrent_)) {
    ++deferred_;
    return false;
  }
  // A slot is free: admit only the neediest pending journal. A loser
  // stays pending and retries at its next step boundary; its bytes only
  // grow, so it cannot lose forever.
  for (const auto& [other, other_bytes] : pending_) {
    if (other != id && other_bytes > bytes) {
      ++deferred_;
      return false;
    }
  }
  pending_.erase(id);
  ++in_flight_;
  max_in_flight_ = std::max(max_in_flight_, in_flight_);
  ++admitted_;
  return true;
}

void CompactionBudget::Release(CampaignId id) {
  util::MutexLock lock(&mu_);
  pending_.erase(id);  // defensive; an admitted request was erased already
  if (in_flight_ > 0) --in_flight_;
}

void CompactionBudget::Forget(CampaignId id) {
  util::MutexLock lock(&mu_);
  pending_.erase(id);
}

int64_t CompactionBudget::in_flight() const {
  util::MutexLock lock(&mu_);
  return in_flight_;
}

int64_t CompactionBudget::max_in_flight() const {
  util::MutexLock lock(&mu_);
  return max_in_flight_;
}

int64_t CompactionBudget::admitted() const {
  util::MutexLock lock(&mu_);
  return admitted_;
}

int64_t CompactionBudget::deferred() const {
  util::MutexLock lock(&mu_);
  return deferred_;
}

}  // namespace service
}  // namespace incentag
