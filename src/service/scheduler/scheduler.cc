#include "src/service/scheduler/scheduler.h"

#include "src/service/scheduler/deadline_scheduler.h"
#include "src/service/scheduler/priority_scheduler.h"
#include "src/service/scheduler/round_robin_scheduler.h"

namespace incentag {
namespace service {

std::unique_ptr<Scheduler> MakeScheduler(const SchedulerOptions& options) {
  switch (options.policy) {
    case SchedulerPolicy::kPriority:
      return std::make_unique<PriorityScheduler>(options);
    case SchedulerPolicy::kDeadline:
      return std::make_unique<DeadlineScheduler>(options);
    case SchedulerPolicy::kRoundRobin:
      break;
  }
  return std::make_unique<RoundRobinScheduler>(options);
}

util::Result<SchedulerPolicy> ParseSchedulerPolicy(const std::string& name) {
  if (name == "rr" || name == "round_robin") {
    return SchedulerPolicy::kRoundRobin;
  }
  if (name == "priority") return SchedulerPolicy::kPriority;
  if (name == "edf" || name == "deadline") return SchedulerPolicy::kDeadline;
  return util::Status::InvalidArgument(
      "unknown scheduler policy '" + name + "' (want rr|priority|edf)");
}

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return "rr";
    case SchedulerPolicy::kPriority:
      return "priority";
    case SchedulerPolicy::kDeadline:
      return "edf";
  }
  return "?";
}

}  // namespace service
}  // namespace incentag
