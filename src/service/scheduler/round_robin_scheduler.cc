#include "src/service/scheduler/round_robin_scheduler.h"

#include <algorithm>

namespace incentag {
namespace service {

void RoundRobinScheduler::Register(CampaignId, const ScheduleParams&) {}

void RoundRobinScheduler::Unregister(CampaignId id) {
  Shard& shard = shards_.ShardOf(id);
  int64_t erased = 0;
  {
    util::MutexLock lock(&shard.mu);
    const auto end =
        std::remove(shard.ready.begin(), shard.ready.end(), id);
    erased = shard.ready.end() - end;
    shard.ready.erase(end, shard.ready.end());
  }
  shards_.NoteRemoved(erased);
}

void RoundRobinScheduler::Enqueue(CampaignId id) {
  // Count-then-insert: see ShardRing's liveness contract.
  shards_.NoteEnqueued();
  Shard& shard = shards_.ShardOf(id);
  util::MutexLock lock(&shard.mu);
  shard.ready.push_back(id);
}

CampaignId RoundRobinScheduler::PopNext() {
  // The manager pairs every Enqueue with exactly one dispatch; PopScan
  // guarantees this dispatch pops SOMETHING whenever an entry exists
  // anywhere, so 0 only means "queue empty" (the entry was stolen by a
  // concurrent dispatch or unregistered) and nothing can be stranded.
  CampaignId popped = 0;
  shards_.PopScan([&popped](Shard& shard) {
    util::MutexLock lock(&shard.mu);
    if (shard.ready.empty()) return false;
    popped = shard.ready.front();
    shard.ready.pop_front();
    return true;
  });
  return popped;
}

int64_t RoundRobinScheduler::Quantum(CampaignId) {
  return options_.base_quantum;
}

}  // namespace service
}  // namespace incentag
