#include "src/service/scheduler/round_robin_scheduler.h"

#include <algorithm>

namespace incentag {
namespace service {

void RoundRobinScheduler::Register(CampaignId, const ScheduleParams&) {}

void RoundRobinScheduler::Unregister(CampaignId id) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_.erase(std::remove(ready_.begin(), ready_.end(), id), ready_.end());
}

void RoundRobinScheduler::Enqueue(CampaignId id) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_.push_back(id);
}

CampaignId RoundRobinScheduler::PopNext() {
  std::lock_guard<std::mutex> lock(mu_);
  if (ready_.empty()) return 0;
  const CampaignId id = ready_.front();
  ready_.pop_front();
  return id;
}

int64_t RoundRobinScheduler::Quantum(CampaignId) {
  return options_.base_quantum;
}

}  // namespace service
}  // namespace incentag
