// CompactionBudget: the fleet-wide cap on concurrent journal rewrites.
//
// PR 3's per-campaign rule ("at most one rewrite in flight per campaign")
// still let N campaigns rewrite N journals simultaneously — N bulk file
// copies and N fsyncs competing with the journal sink for the same disk.
// The budget admits at most max_concurrent rewrites across the whole
// fleet, and when slots are contended it admits the neediest campaign
// first: the one with the most journal bytes accumulated since its last
// snapshot, i.e. the one whose recovery story is deteriorating fastest.
//
// Admission is pull-based. A campaign's stepper calls Request(id, bytes)
// at a step boundary when its journal is due; a refusal is cheap — the
// trigger state stays set, so the next step boundary simply asks again
// (steppers run continuously, so deferral is a short delay, not a lost
// compaction). A pending request is remembered so that when a slot frees,
// smaller journals keep losing the comparison to the biggest pending one
// until it is admitted or forgotten. A campaign that goes quiet while
// pending does not starve the others forever: its competitors' journals
// keep growing, so their `bytes` eventually win the comparison.
//
// Thread-safe; Release may run on the persist::Compactor thread while
// steppers request admission concurrently.
#ifndef INCENTAG_SERVICE_SCHEDULER_COMPACTION_BUDGET_H_
#define INCENTAG_SERVICE_SCHEDULER_COMPACTION_BUDGET_H_

#include <cstdint>
#include <unordered_map>

#include "src/service/completion_source.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace incentag {
namespace service {

class CompactionBudget {
 public:
  // <= 0 means unlimited: every request is admitted immediately.
  explicit CompactionBudget(int max_concurrent)
      : max_concurrent_(max_concurrent) {}

  CompactionBudget(const CompactionBudget&) = delete;
  CompactionBudget& operator=(const CompactionBudget&) = delete;

  // Records (or refreshes) `id`'s desire to compact `bytes` journal bytes
  // accumulated since its last snapshot and tries to admit it. Admitted —
  // true, a slot is held until Release(id) — iff a slot is free and no
  // other pending request has more bytes (ties admit, so equal-size
  // journals cannot deadlock each other).
  bool Request(CampaignId id, int64_t bytes) EXCLUDES(mu_);

  // Frees the slot held by an admitted request.
  void Release(CampaignId id) EXCLUDES(mu_);

  // Drops a pending (not admitted) request — called when the campaign
  // goes terminal so a stale request cannot outrank live ones.
  void Forget(CampaignId id) EXCLUDES(mu_);

  int max_concurrent() const { return max_concurrent_; }
  int64_t in_flight() const EXCLUDES(mu_);
  // High-water mark of concurrent admissions, for tests: with
  // max_concurrent=1 this must never exceed 1 across a whole fleet.
  int64_t max_in_flight() const EXCLUDES(mu_);
  int64_t admitted() const EXCLUDES(mu_);
  int64_t deferred() const EXCLUDES(mu_);

 private:
  const int max_concurrent_;
  mutable util::Mutex mu_;
  std::unordered_map<CampaignId, int64_t> pending_ GUARDED_BY(mu_);
  int64_t in_flight_ GUARDED_BY(mu_) = 0;
  int64_t max_in_flight_ GUARDED_BY(mu_) = 0;
  int64_t admitted_ GUARDED_BY(mu_) = 0;
  int64_t deferred_ GUARDED_BY(mu_) = 0;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_COMPACTION_BUDGET_H_
