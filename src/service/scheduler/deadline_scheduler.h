// DeadlineScheduler: earliest-deadline-first dispatch with
// starvation-proof aging.
//
// Each campaign's deadline is absolute — fixed at registration as
// (now + deadline_seconds) — so EDF ordering is a plain comparison of
// absolute deadlines; campaigns without a deadline rank behind every
// dated one. Quanta are uniform (base_quantum): EDF reorders *which*
// campaign a free worker steps, not how long it runs.
//
// Aging: every entry PopNext passes over moves its effective deadline
// deadline_aging_seconds_per_skip earlier; that breaks convoys among
// close deadlines but cannot rescue a no-deadline campaign from an
// endless stream of dated ones, so the hard starvation_limit bound
// (RankedScheduler) does. Skip counts reset when the campaign is
// popped.
#ifndef INCENTAG_SERVICE_SCHEDULER_DEADLINE_SCHEDULER_H_
#define INCENTAG_SERVICE_SCHEDULER_DEADLINE_SCHEDULER_H_

#include <cstdint>
#include <unordered_map>

#include "src/service/scheduler/ranked_scheduler.h"
#include "src/util/stopwatch.h"

namespace incentag {
namespace service {

class DeadlineScheduler : public RankedScheduler {
 public:
  explicit DeadlineScheduler(const SchedulerOptions& options)
      : RankedScheduler(options) {}

  const char* name() const override { return "edf"; }

  void Register(CampaignId id, const ScheduleParams& params) override;
  int64_t Quantum(CampaignId id) override;

 protected:
  double RankKey(const Entry& entry) const override;
  void ForgetParamsLocked(CampaignId id) override;

 private:
  // Absolute deadlines as seconds on the scheduler's own clock (seconds
  // since construction), so comparisons never involve "now".
  static constexpr double kNoDeadline = 1e18;

  double DeadlineOf(CampaignId id) const;  // callers hold mu_

  util::Stopwatch clock_;
  std::unordered_map<CampaignId, double> deadlines_;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_DEADLINE_SCHEDULER_H_
