// DeadlineScheduler: earliest-deadline-first dispatch with
// starvation-proof aging.
//
// Each campaign's deadline is absolute — fixed at registration as
// (now + deadline_seconds) on the RankedScheduler's clock — so EDF
// ordering is a plain comparison of absolute deadlines; campaigns
// without a deadline rank behind every dated one. Quanta are uniform
// (base_quantum): EDF reorders *which* campaign a free worker steps, not
// how long it runs.
//
// Aging: every entry PopNext passes over moves its effective deadline
// deadline_aging_seconds_per_skip earlier; that breaks convoys among
// close deadlines but cannot rescue a no-deadline campaign from an
// endless stream of dated ones, so the hard starvation_limit bound
// (RankedScheduler, which also owns the sharded ready-queue/steal
// layout) does. Skip counts reset when the campaign is popped.
#ifndef INCENTAG_SERVICE_SCHEDULER_DEADLINE_SCHEDULER_H_
#define INCENTAG_SERVICE_SCHEDULER_DEADLINE_SCHEDULER_H_

#include <cstdint>

#include "src/service/scheduler/ranked_scheduler.h"

namespace incentag {
namespace service {

class DeadlineScheduler : public RankedScheduler {
 public:
  explicit DeadlineScheduler(const SchedulerOptions& options)
      : RankedScheduler(options) {}

  const char* name() const override { return "edf"; }

 protected:
  double RankKey(const Entry& entry,
                 const CampaignParams& params) const override;
  int64_t QuantumFor(const CampaignParams& params) const override;
};

}  // namespace service
}  // namespace incentag

#endif  // INCENTAG_SERVICE_SCHEDULER_DEADLINE_SCHEDULER_H_
