#include "src/service/external_source.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"

namespace incentag {
namespace service {
namespace {

struct IntakeMetrics {
  obs::Counter* delivered;
  obs::Counter* duplicates;
  obs::Counter* unknown;
  obs::Counter* invalid;
  obs::Histogram* batch_size;

  static const IntakeMetrics& Get() {
    static const IntakeMetrics m = [] {
      auto& reg = obs::Registry::Default();
      IntakeMetrics out;
      out.delivered = reg.GetCounter(
          "incentag_service_intake_delivered_total",
          "External completions delivered to campaign inboxes");
      out.duplicates = reg.GetCounter(
          "incentag_service_intake_duplicates_total",
          "External completions dropped as already applied");
      out.unknown = reg.GetCounter(
          "incentag_service_intake_unknown_total",
          "External completions rejected as never assigned");
      out.invalid = reg.GetCounter(
          "incentag_service_intake_invalid_total",
          "External completions rejected for a resource mismatch");
      out.batch_size = reg.GetHistogram(
          "incentag_service_intake_batch_size",
          "External completion batch sizes at intake",
          obs::BatchSizeBounds());
      return out;
    }();
    return m;
  }
};

}  // namespace

bool ExternalCompletionSource::SubmitTasks(
    const std::vector<TaskHandle>& tasks, const CompletionFn& done) {
  if (tasks.empty()) return true;
  {
    util::MutexLock lock(&map_mu_);
    if (stopped_) return false;
  }
  Entry* entry = GetEntry(tasks.front().campaign);
  util::MutexLock lock(&entry->mu);
  entry->done = done;
  // Batches arrive in ascending seq order, continuing exactly where the
  // journal left off — so the first seq of the first batch *is* the
  // journaled high-water mark, and the floor ratchets onto it.
  entry->dedup_floor = std::max(entry->dedup_floor, tasks.front().seq);
  for (const TaskHandle& task : tasks) {
    entry->parked.emplace(task.seq, task.resource);
    entry->assign_watermark = std::max(entry->assign_watermark, task.seq + 1);
  }
  return true;
}

IntakeResult ExternalCompletionSource::Complete(
    CampaignId campaign, const std::vector<ExternalCompletion>& batch,
    uint64_t applied_floor) {
  IntakeResult result;
  IntakeMetrics::Get().batch_size->Observe(
      static_cast<double>(batch.size()));
  {
    util::MutexLock lock(&map_mu_);
    if (stopped_) {
      result.unknown = batch.size();
      return result;
    }
  }
  Entry* entry = GetEntry(campaign);

  // Phase 1 (entry lock): classify and collect deliverable tasks.
  std::vector<TaskHandle> deliver;
  CompletionFn done;
  {
    util::MutexLock lock(&entry->mu);
    entry->dedup_floor = std::max(entry->dedup_floor, applied_floor);
    deliver.reserve(batch.size());
    for (const ExternalCompletion& c : batch) {
      auto it = entry->parked.find(c.seq);
      if (it != entry->parked.end()) {
        if (it->second != c.resource) {
          ++result.invalid;
          continue;
        }
        entry->parked.erase(it);
        deliver.push_back(TaskHandle{campaign, c.resource, c.seq});
        continue;
      }
      // Not parked: below the floor it was applied before (possibly by a
      // previous incarnation — the journal already holds it); otherwise
      // it was never assigned. A racing double-send of the same seq
      // lands here too: the first send parked->delivered it, so the
      // floor may not have caught up yet — anything under the
      // assignment watermark that is no longer parked is a duplicate.
      if (c.seq < std::max(entry->dedup_floor, entry->assign_watermark)) {
        ++result.duplicates;
      } else {
        ++result.unknown;
      }
    }
    if (!deliver.empty()) done = entry->done;
  }

  // Phase 2 (no locks of ours): hand the span to the campaign. The
  // callback takes the campaign's inbox lock inside the manager; holding
  // entry->mu across it would nest intake state under inbox delivery
  // for no reason.
  if (!deliver.empty() && done) {
    std::sort(deliver.begin(), deliver.end(),
              [](const TaskHandle& a, const TaskHandle& b) {
                return a.seq < b.seq;
              });
    done(std::span<const TaskHandle>(deliver));
    result.delivered = deliver.size();
  } else if (!deliver.empty()) {
    // Parked tasks with no callback cannot happen (SubmitTasks stores it
    // before parking) — but never silently drop completions.
    result.unknown += deliver.size();
  }

  const IntakeMetrics& metrics = IntakeMetrics::Get();
  metrics.delivered->Add(static_cast<int64_t>(result.delivered));
  metrics.duplicates->Add(static_cast<int64_t>(result.duplicates));
  metrics.unknown->Add(static_cast<int64_t>(result.unknown));
  metrics.invalid->Add(static_cast<int64_t>(result.invalid));
  return result;
}

std::vector<TaskHandle> ExternalCompletionSource::Pending(
    CampaignId campaign, size_t max) const {
  std::vector<TaskHandle> out;
  const Entry* entry = FindEntry(campaign);
  if (entry == nullptr || max == 0) return out;
  util::MutexLock lock(&entry->mu);
  out.reserve(std::min(max, entry->parked.size()));
  for (const auto& [seq, resource] : entry->parked) {
    out.push_back(TaskHandle{campaign, resource, seq});
  }
  std::sort(out.begin(), out.end(),
            [](const TaskHandle& a, const TaskHandle& b) {
              return a.seq < b.seq;
            });
  if (out.size() > max) out.resize(max);
  return out;
}

void ExternalCompletionSource::Stop() {
  util::MutexLock lock(&map_mu_);
  stopped_ = true;
}

ExternalCompletionSource::Entry* ExternalCompletionSource::GetEntry(
    CampaignId campaign) {
  util::MutexLock lock(&map_mu_);
  auto& slot = entries_[campaign];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return slot.get();
}

const ExternalCompletionSource::Entry* ExternalCompletionSource::FindEntry(
    CampaignId campaign) const {
  util::MutexLock lock(&map_mu_);
  auto it = entries_.find(campaign);
  return it == entries_.end() ? nullptr : it->second.get();
}

}  // namespace service
}  // namespace incentag
