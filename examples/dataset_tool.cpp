// Dataset tool: export a synthetic corpus as a del.icio.us-style dump,
// re-import it, and print corpus statistics (the numbers behind the
// paper's Figure 1(b) and its Section I analysis).
//
// Modes:
//   --mode=export --out=posts.tsv        generate a corpus, write the dump
//   --mode=stats  --in=posts.tsv         read a dump, print statistics
//   --mode=roundtrip                      export + import + prep, in /tmp
//
// A real del.icio.us crawl converted to the four-column format (epoch,
// user, url, tags) can be fed to --mode=stats unchanged.
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/dataset_prep.h"
#include "src/sim/delicious_format.h"
#include "src/sim/generator.h"
#include "src/util/flags.h"
#include "src/util/stats.h"

namespace {

using incentag::sim::RawDump;

int PrintDumpStats(const RawDump& dump) {
  std::printf("dump: %lld lines, %lld posts, %lld skipped, %zu urls, "
              "%zu tags\n",
              static_cast<long long>(dump.lines),
              static_cast<long long>(dump.posts),
              static_cast<long long>(dump.skipped), dump.urls.size(),
              dump.vocab.size());

  incentag::util::LogHistogram histogram;
  incentag::util::RunningStats posts_per_url;
  for (const auto& seq : dump.sequences) {
    histogram.Add(seq.size());
    posts_per_url.Add(static_cast<double>(seq.size()));
  }
  std::printf("\nposts-per-resource distribution (Figure 1(b) shape):\n%s",
              histogram.ToString().c_str());
  std::printf("mean=%.1f min=%.0f max=%.0f\n", posts_per_url.mean(),
              posts_per_url.min(), posts_per_url.max());

  // Dataset preparation summary (stable rfds, stable points).
  incentag::sim::PrepConfig prep_config;
  auto prep = incentag::sim::PrepareFromSequences(dump.sequences, dump.urls,
                                                  prep_config);
  if (!prep.ok()) {
    std::printf("\nprep: %s\n", prep.status().ToString().c_str());
    return 0;  // stats mode still succeeded
  }
  std::vector<double> stable_points;
  for (const auto& ref : prep.value().references) {
    stable_points.push_back(static_cast<double>(ref.stable_point));
  }
  std::printf("\nprep: kept %zu stable resources (dropped %lld)\n",
              prep.value().size(),
              static_cast<long long>(prep.value().dropped_unstable));
  std::printf("stable points: p25=%.0f median=%.0f p75=%.0f\n",
              incentag::util::Percentile(stable_points, 25),
              incentag::util::Percentile(stable_points, 50),
              incentag::util::Percentile(stable_points, 75));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace incentag;

  std::string mode = "roundtrip";
  std::string in_path;
  std::string out_path = "/tmp/incentag_posts.tsv";
  int64_t n = 300;
  int64_t seed = 42;
  util::FlagSet flags;
  flags.AddString("mode", &mode, "export | stats | roundtrip");
  flags.AddString("in", &in_path, "dump file to read (stats mode)");
  flags.AddString("out", &out_path, "dump file to write (export mode)");
  flags.AddInt("n", &n, "resources to generate (export mode)");
  flags.AddInt("seed", &seed, "corpus seed");
  util::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\nusage:\n%s", parsed.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }

  auto export_corpus = [&](const std::string& path) -> util::Status {
    sim::CorpusConfig config;
    config.num_resources = n;
    config.seed = static_cast<uint64_t>(seed);
    auto corpus = sim::Corpus::Generate(config);
    if (!corpus.ok()) return corpus.status();
    std::vector<std::string> urls;
    std::vector<core::PostSequence> sequences;
    for (core::ResourceId i = 0; i < corpus.value().num_resources(); ++i) {
      urls.push_back(corpus.value().resource(i).url);
      sequences.push_back(corpus.value().MaterializeSequence(
          i, corpus.value().resource(i).year_length));
    }
    INCENTAG_RETURN_IF_ERROR(
        sim::WriteDumpFile(path, urls, sequences, corpus.value().vocab()));
    std::printf("wrote %zu resources to %s\n", urls.size(), path.c_str());
    return util::Status::OK();
  };

  if (mode == "export") {
    util::Status status = export_corpus(out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }
  if (mode == "stats") {
    if (in_path.empty()) {
      std::fprintf(stderr, "--mode=stats requires --in=<dump>\n");
      return 1;
    }
    auto dump = sim::ReadDumpFile(in_path);
    if (!dump.ok()) {
      std::fprintf(stderr, "%s\n", dump.status().ToString().c_str());
      return 1;
    }
    return PrintDumpStats(dump.value());
  }
  if (mode == "roundtrip") {
    util::Status status = export_corpus(out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    auto dump = sim::ReadDumpFile(out_path);
    if (!dump.ok()) {
      std::fprintf(stderr, "%s\n", dump.status().ToString().c_str());
      return 1;
    }
    return PrintDumpStats(dump.value());
  }
  std::fprintf(stderr, "unknown --mode=%s\n", mode.c_str());
  return 1;
}
