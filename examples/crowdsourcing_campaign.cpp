// Crowdsourcing campaign simulator — the workflow of the paper's Figure 2.
//
// A resource owner has a reward budget and must decide which under-tagged
// resources to put in front of crowd workers. This example runs the same
// campaign under every incentive allocation strategy (FC, RR, FP, MU,
// FP-MU, and the offline-optimal DP) and prints a side-by-side report:
// quality gained, post tasks wasted on over-tagged resources, and how many
// resources remain under-tagged.
//
//   ./build/examples/crowdsourcing_campaign --n=400 --budget=1500 --omega=5
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/allocation.h"
#include "src/core/dp_planner.h"
#include "src/core/strategy_fc.h"
#include "src/core/strategy_fp.h"
#include "src/core/strategy_fpmu.h"
#include "src/core/strategy_mu.h"
#include "src/core/strategy_rr.h"
#include "src/sim/crowd.h"
#include "src/sim/dataset_prep.h"
#include "src/sim/generator.h"
#include "src/util/flags.h"

namespace {

struct Row {
  std::string name;
  incentag::core::AllocationMetrics metrics;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace incentag;

  int64_t n = 400;
  int64_t budget = 1500;
  int64_t omega = 5;
  int64_t seed = 42;
  bool run_dp = true;
  util::FlagSet flags;
  flags.AddInt("n", &n, "number of resources to generate");
  flags.AddInt("budget", &budget, "reward units (post tasks) to spend");
  flags.AddInt("omega", &omega, "MA window for MU / FP-MU");
  flags.AddInt("seed", &seed, "corpus seed");
  flags.AddBool("dp", &run_dp, "also run the offline-optimal DP (slow)");
  util::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\nusage:\n%s", parsed.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }

  sim::CorpusConfig corpus_config;
  corpus_config.num_resources = n;
  corpus_config.seed = static_cast<uint64_t>(seed);
  auto corpus = sim::Corpus::Generate(corpus_config);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto dataset = sim::PrepareFromCorpus(corpus.value(), sim::PrepConfig{});
  if (!dataset.ok()) {
    std::fprintf(stderr, "prep: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const sim::PreparedDataset& ds = dataset.value();
  std::printf("campaign: %zu resources, budget %lld, omega %lld\n",
              ds.size(), static_cast<long long>(budget),
              static_cast<long long>(omega));

  core::EngineOptions options;
  options.budget = budget;
  options.omega = static_cast<int>(omega);
  core::AllocationEngine engine(options, &ds.initial_posts, &ds.references);

  auto run = [&](core::Strategy* strategy) -> Row {
    core::VectorPostStream stream = ds.MakeStream();
    auto report = engine.Run(strategy, &stream);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", std::string(strategy->name()).c_str(),
                   report.status().ToString().c_str());
      return Row{std::string(strategy->name()), {}, 0.0};
    }
    return Row{std::string(strategy->name()), report.value().final_metrics,
               report.value().elapsed_seconds};
  };

  std::vector<Row> rows;
  sim::CrowdModel crowd(ds.popularity, /*alpha=*/1.0, /*seed=*/99);
  core::FreeChoiceStrategy fc(crowd.MakePicker());
  core::RoundRobinStrategy rr;
  core::FewestPostsStrategy fp;
  core::MostUnstableStrategy mu;
  core::HybridFpMuStrategy fpmu;
  rows.push_back(run(&fc));
  rows.push_back(run(&rr));
  rows.push_back(run(&fp));
  rows.push_back(run(&mu));
  rows.push_back(run(&fpmu));

  if (run_dp) {
    core::VectorPostStream dp_stream = ds.MakeStream();
    auto plan = core::DpPlanner::Plan(ds.initial_posts, ds.references,
                                      &dp_stream, budget);
    if (plan.ok()) {
      core::PlanStrategy dp(plan.value().allocation);
      rows.push_back(run(&dp));
    } else {
      std::fprintf(stderr, "DP skipped: %s\n",
                   plan.status().ToString().c_str());
    }
  }

  // The campaign's starting point for reference.
  core::EngineOptions zero = options;
  zero.budget = 0;
  core::AllocationEngine zero_engine(zero, &ds.initial_posts,
                                     &ds.references);
  core::RoundRobinStrategy noop;
  core::VectorPostStream zero_stream = ds.MakeStream();
  auto before = zero_engine.Run(&noop, &zero_stream);

  std::printf("\n%-6s  %8s  %8s  %8s  %12s  %10s\n", "strat", "quality",
              "gain%", "wasted", "under-tagged", "time(s)");
  if (before.ok()) {
    const auto& m = before.value().final_metrics;
    std::printf("%-6s  %8.4f  %8s  %8s  %12lld  %10s\n", "(start)",
                m.avg_quality, "-", "-",
                static_cast<long long>(m.under_tagged), "-");
    for (const Row& row : rows) {
      std::printf("%-6s  %8.4f  %+7.2f%%  %8lld  %12lld  %10.4f\n",
                  row.name.c_str(), row.metrics.avg_quality,
                  100.0 * (row.metrics.avg_quality / m.avg_quality - 1.0),
                  static_cast<long long>(row.metrics.wasted_posts),
                  static_cast<long long>(row.metrics.under_tagged),
                  row.seconds);
    }
  }
  std::printf(
      "\nReading the table: FP / FP-MU should track DP closely; FC burns\n"
      "budget on already-stable (over-tagged) resources, as in the paper.\n");
  return 0;
}
