// Incentive pricing: the two paper extensions working together.
//
// Section III-C remarks that the model "can easily be extended to handle
// post tasks of different reward amounts", and Section VI lists user
// preference as future work. This example combines both: tagger
// communities (PreferenceCrowd) imply that niche resources reach fewer
// willing workers, which prices their post tasks higher (MakeCostModel);
// the campaign is then run with cost-aware allocation (CostAwareFpStrategy
// and DpPlanner::PlanWithCosts) against the plain FP baseline.
//
//   ./build/examples/incentive_pricing --budget=2500 --focus=0.9
#include <cstdio>
#include <vector>

#include "src/core/allocation.h"
#include "src/core/dp_planner.h"
#include "src/core/strategy_fp.h"
#include "src/core/strategy_fp_cost.h"
#include "src/sim/dataset_prep.h"
#include "src/sim/generator.h"
#include "src/sim/preference_crowd.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace incentag;

  int64_t n = 300;
  int64_t seed = 42;
  int64_t budget = 2500;
  int64_t base_cost = 2;
  double focus = 0.9;
  util::FlagSet flags;
  flags.AddInt("n", &n, "resources to generate");
  flags.AddInt("seed", &seed, "corpus seed");
  flags.AddInt("budget", &budget, "reward units");
  flags.AddInt("base_cost", &base_cost, "cheapest task price");
  flags.AddDouble("focus", &focus, "tagger community focus in [0,1]");
  util::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\nusage:\n%s", parsed.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }

  sim::CorpusConfig corpus_config;
  corpus_config.num_resources = n;
  corpus_config.seed = static_cast<uint64_t>(seed);
  auto corpus = sim::Corpus::Generate(corpus_config);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto prep = sim::PrepareFromCorpus(corpus.value(), sim::PrepConfig{});
  if (!prep.ok()) {
    std::fprintf(stderr, "prep: %s\n", prep.status().ToString().c_str());
    return 1;
  }
  const sim::PreparedDataset& ds = prep.value();

  // Price post tasks from the community structure.
  std::vector<sim::CategoryId> areas(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    const auto& info = corpus.value().resource(ds.source_ids[i]);
    areas[i] = corpus.value().hierarchy().category(info.primary).parent;
  }
  sim::PreferenceCrowd::Options crowd_options;
  crowd_options.focus = focus;
  sim::PreferenceCrowd crowd(areas, ds.popularity, crowd_options,
                             static_cast<uint64_t>(seed) + 1);
  core::CostModel costs = crowd.MakeCostModel(base_cost);
  std::printf("pricing: %zu resources, focus %.2f -> task costs %lld..%lld "
              "units, budget %lld\n",
              ds.size(), focus, static_cast<long long>(costs.min_cost()),
              static_cast<long long>(costs.max_cost()),
              static_cast<long long>(budget));

  core::EngineOptions options;
  options.budget = budget;
  options.omega = 5;
  options.costs = &costs;
  core::AllocationEngine engine(options, &ds.initial_posts, &ds.references);

  auto run = [&](core::Strategy* strategy) -> core::RunReport {
    core::VectorPostStream stream = ds.MakeStream();
    auto report = engine.Run(strategy, &stream);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(report).value();
  };

  core::FewestPostsStrategy fp;
  core::CostAwareFpStrategy fp_cost(&costs);
  core::RunReport fp_report = run(&fp);
  core::RunReport fp_cost_report = run(&fp_cost);

  core::VectorPostStream dp_stream = ds.MakeStream();
  auto plan = core::DpPlanner::PlanWithCosts(ds.initial_posts, ds.references,
                                             &dp_stream, budget, costs);
  if (!plan.ok()) {
    std::fprintf(stderr, "dp: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  core::PlanStrategy dp(plan.value().allocation);
  core::RunReport dp_report = run(&dp);

  std::printf("\n%-10s  %10s  %8s  %10s\n", "strategy", "quality", "tasks",
              "spent");
  for (const core::RunReport* report :
       {&fp_report, &fp_cost_report, &dp_report}) {
    int64_t tasks = 0;
    for (int64_t x : report->allocation) tasks += x;
    std::printf("%-10s  %10.4f  %8lld  %10lld\n",
                report->strategy_name.c_str(),
                report->final_metrics.avg_quality,
                static_cast<long long>(tasks),
                static_cast<long long>(report->budget_spent));
  }
  std::printf("\ncost-aware allocation buys more tasks per unit of budget; "
              "DP(costs) bounds what any allocation can achieve.\n");
  return 0;
}
