// Similarity search case study — the scenario behind the paper's Table VI.
//
// The subject page www.myphysicslab.example has two aspects (physics
// simulations, implemented in Java) and its early posts over-represent the
// Java aspect. With only the January posts, a tag-based top-10 query
// returns the wrong neighbourhood. This example shows the top-10 list
// under four snapshots:
//
//   Jan-cut   : initial posts only
//   FC        : after a campaign run by Free Choice
//   FP        : after the same budget under Fewest Posts First
//   Year-end  : every post of the year (the "ideal" reference)
//
//   ./build/examples/similarity_search --budget=4000
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/allocation.h"
#include "src/core/strategy_fc.h"
#include "src/core/strategy_fp.h"
#include "src/ir/similarity.h"
#include "src/ir/topk.h"
#include "src/sim/crowd.h"
#include "src/sim/dataset_prep.h"
#include "src/sim/generator.h"
#include "src/util/flags.h"

namespace {

using incentag::core::PostSequence;
using incentag::core::RfdVector;
using incentag::ir::ScoredResource;

// Post counts after a strategy run: initial + allocation.
std::vector<int64_t> CountsAfter(
    const incentag::sim::PreparedDataset& ds,
    const std::vector<int64_t>& allocation) {
  std::vector<int64_t> counts(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    counts[i] = static_cast<int64_t>(ds.initial_posts[i].size()) +
                (allocation.empty() ? 0 : allocation[i]);
  }
  return counts;
}

void PrintTopK(const char* label, const std::vector<ScoredResource>& top,
               const incentag::sim::PreparedDataset& ds,
               const incentag::sim::Corpus& corpus) {
  std::printf("\n--- %s ---\n", label);
  for (size_t r = 0; r < top.size(); ++r) {
    const auto& info = corpus.resource(ds.source_ids[top[r].id]);
    std::printf("%2zu. %-34s  [%s]  sim=%.3f\n", r + 1,
                ds.urls[top[r].id].c_str(),
                corpus.hierarchy().category(info.primary).short_name.c_str(),
                top[r].similarity);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace incentag;

  int64_t n = 500;
  int64_t budget = 4000;
  int64_t seed = 42;
  std::string subject_url = "www.myphysicslab.example";
  util::FlagSet flags;
  flags.AddInt("n", &n, "number of resources");
  flags.AddInt("budget", &budget, "post tasks per campaign");
  flags.AddInt("seed", &seed, "corpus seed");
  flags.AddString("subject", &subject_url, "subject page url");
  util::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\nusage:\n%s", parsed.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }

  sim::CorpusConfig corpus_config;
  corpus_config.num_resources = n;
  corpus_config.seed = static_cast<uint64_t>(seed);
  auto corpus = sim::Corpus::Generate(corpus_config);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto dataset = sim::PrepareFromCorpus(corpus.value(), sim::PrepConfig{});
  if (!dataset.ok()) {
    std::fprintf(stderr, "prep: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const sim::PreparedDataset& ds = dataset.value();

  // Locate the subject within the prepared dataset.
  size_t subject = ds.size();
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.urls[i] == subject_url) subject = i;
  }
  if (subject == ds.size()) {
    std::fprintf(stderr,
                 "subject %s did not survive dataset preparation; try "
                 "another seed\n",
                 subject_url.c_str());
    return 1;
  }
  std::printf("subject: %s (%zu resources, budget %lld)\n",
              subject_url.c_str(), ds.size(),
              static_cast<long long>(budget));

  // Year sequences (initial + future) for building rfd snapshots.
  std::vector<PostSequence> year(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    year[i] = ds.initial_posts[i];
    year[i].insert(year[i].end(), ds.future_posts[i].begin(),
                   ds.future_posts[i].end());
  }

  core::EngineOptions options;
  options.budget = budget;
  core::AllocationEngine engine(options, &ds.initial_posts, &ds.references);

  sim::CrowdModel crowd(ds.popularity, 1.0, 99);
  core::FreeChoiceStrategy fc(crowd.MakePicker());
  core::VectorPostStream fc_stream = ds.MakeStream();
  auto fc_report = engine.Run(&fc, &fc_stream);
  core::FewestPostsStrategy fp;
  core::VectorPostStream fp_stream = ds.MakeStream();
  auto fp_report = engine.Run(&fp, &fp_stream);
  if (!fc_report.ok() || !fp_report.ok()) {
    std::fprintf(stderr, "campaign failed\n");
    return 1;
  }

  const auto subject_id = static_cast<core::ResourceId>(subject);
  const size_t k = 10;

  std::vector<RfdVector> jan = ir::BuildRfds(year, CountsAfter(ds, {}));
  std::vector<RfdVector> after_fc =
      ir::BuildRfds(year, CountsAfter(ds, fc_report.value().allocation));
  std::vector<RfdVector> after_fp =
      ir::BuildRfds(year, CountsAfter(ds, fp_report.value().allocation));
  std::vector<RfdVector> ideal = ir::BuildRfds(year);

  auto jan_top = ir::TopKSimilar(jan, subject_id, k);
  auto fc_top = ir::TopKSimilar(after_fc, subject_id, k);
  auto fp_top = ir::TopKSimilar(after_fp, subject_id, k);
  auto ideal_top = ir::TopKSimilar(ideal, subject_id, k);

  PrintTopK("January cut (before any campaign)", jan_top, ds,
            corpus.value());
  PrintTopK("After FC campaign", fc_top, ds, corpus.value());
  PrintTopK("After FP campaign", fp_top, ds, corpus.value());
  PrintTopK("Year end (ideal)", ideal_top, ds, corpus.value());

  std::printf("\noverlap with the ideal top-%zu:  Jan=%zu  FC=%zu  FP=%zu\n",
              k, ir::OverlapCount(jan_top, ideal_top),
              ir::OverlapCount(fc_top, ideal_top),
              ir::OverlapCount(fp_top, ideal_top));
  return 0;
}
