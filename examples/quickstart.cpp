// Quickstart: the incentag pipeline in ~60 lines.
//
// 1. Generate a small synthetic tagging corpus (the del.icio.us stand-in).
// 2. Prepare the dataset: find each resource's practically-stable rfd and
//    split its year of posts at the "January" cut.
// 3. Spend a budget of post tasks with the Fewest Posts First strategy —
//    the one the paper ultimately recommends — and watch the average
//    tagging quality of the resource set improve.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/allocation.h"
#include "src/core/strategy_fp.h"
#include "src/sim/dataset_prep.h"
#include "src/sim/generator.h"

int main() {
  using namespace incentag;

  // 1. A corpus of 300 resources with Zipf popularity and topical tags.
  sim::CorpusConfig corpus_config;
  corpus_config.num_resources = 300;
  corpus_config.seed = 7;
  auto corpus = sim::Corpus::Generate(corpus_config);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // 2. Dataset preparation (paper Section V-A): keep resources whose rfd
  //    provably stabilises, record stable rfds/points, cut at "January".
  sim::PrepConfig prep_config;
  auto dataset = sim::PrepareFromCorpus(corpus.value(), prep_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "prep: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %zu resources kept (of %lld scanned)\n",
              dataset.value().size(),
              static_cast<long long>(dataset.value().scanned));

  // 3. Allocate a budget of 1,000 post tasks with FP and report quality.
  core::EngineOptions options;
  options.budget = 1000;
  options.omega = 5;
  options.checkpoints = {0, 250, 500, 750, 1000};
  core::AllocationEngine engine(options, &dataset.value().initial_posts,
                                &dataset.value().references);
  core::FewestPostsStrategy fp;
  core::VectorPostStream stream = dataset.value().MakeStream();
  auto report = engine.Run(&fp, &stream);
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%8s  %10s  %12s\n", "budget", "quality", "under-tagged");
  for (const core::AllocationMetrics& m : report.value().checkpoints) {
    std::printf("%8lld  %10.4f  %12lld\n",
                static_cast<long long>(m.budget_used), m.avg_quality,
                static_cast<long long>(m.under_tagged));
  }
  std::printf(
      "\nFP raised the set's tagging quality by %.1f%% with %lld tasks.\n",
      100.0 * (report.value().final_metrics.avg_quality /
                   report.value().checkpoints.front().avg_quality -
               1.0),
      static_cast<long long>(report.value().budget_spent));
  return 0;
}
