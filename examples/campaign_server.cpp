// Campaign server: 100 concurrent mixed-strategy tagging campaigns.
//
// The production picture behind the paper's single-campaign Algorithm 1:
// a tagging platform runs one incentive campaign per community — distinct
// budgets, batch sizes and allocation strategies — against a shared
// resource catalogue, with a simulated tagger crowd completing post tasks
// asynchronously. The server submits every campaign to a CampaignManager,
// polls live CampaignStatus snapshots while they run (the operator
// dashboard), and prints a per-strategy rollup when the fleet drains.
//
//   ./build/examples/campaign_server --campaigns=100 --n=400
//       --threads=8 --taggers=16 --latency_us=50
//
// Durability demo (kill-and-recover): with --journal_dir every campaign
// appends a write-ahead journal, and --kill_after_polls=N exits abruptly
// (no destructors, no final fsync — a crash) mid-fleet. Re-running with
// --recover resurrects every journaled campaign from its SubmitRecord,
// replays the recorded completions, and drains the fleet to the same
// reports the uninterrupted run would have produced:
//
//   ./build/examples/campaign_server --journal_dir=/tmp/itag-journals
//       --compact_every=200 --kill_after_polls=3   # "crash" mid-fleet
//   ./build/examples/campaign_server --journal_dir=/tmp/itag-journals
//       --recover                   # resumes them where the journal ends
//
// With --compact_every the journals are checkpoint-compacted as they
// grow (format v2): recovery seeks to each journal's snapshot and
// replays only the tail — the --recover run prints journal bytes and
// records replayed per campaign so the effect is visible end to end.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

// Scheduling demo (mixed fleet): --scheduler=rr|priority|edf picks the
// stepping policy; every 4th campaign becomes "critical" — it gets
// --priority and, with --deadline_ms, a completion deadline. The final
// rollup prints per-class quanta, deadline slack and miss counts, so the
// policies are directly comparable:
//
//   ./build/examples/campaign_server --scheduler=edf --priority=8
//       --deadline_ms=500 --threads=2
// HTTP edge demo (ISSUE 8): --http_port exposes the fleet's /v1 REST
// surface (submit, listing, status, metrics — see src/http/README.md)
// while the fleet runs; --http_ingest switches completions from the
// simulated crowd to the idempotent intake endpoint, so external
// taggers drive the fleet with GET tasks / POST completions;
// --serve_seconds holds the server open that long (tools/http_smoke.sh
// drives the whole surface with curl):
//
//   ./build/examples/campaign_server --http_port=8080 --http_ingest
//       --campaigns=0 --serve_seconds=30
#include "src/core/strategy_fc.h"
#include "src/core/strategy_fp.h"
#include "src/core/strategy_fpmu.h"
#include "src/core/strategy_mu.h"
#include "src/core/strategy_rr.h"
#include "src/http/campaign_routes.h"
#include "src/http/server.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/persist/journal.h"
#include "src/service/api/dto.h"
#include "src/service/campaign_manager.h"
#include "src/service/external_source.h"
#include "src/sim/crowd.h"
#include "src/sim/dataset_prep.h"
#include "src/sim/generator.h"
#include "src/sim/load_generator.h"
#include "src/sim/strategy_factory.h"
#include "src/util/flags.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace {

using namespace incentag;

const char* StateName(service::CampaignState state) {
  switch (state) {
    case service::CampaignState::kRunning:
      return "running";
    case service::CampaignState::kDone:
      return "done";
    case service::CampaignState::kCancelled:
      return "cancelled";
    case service::CampaignState::kFailed:
      return "failed";
  }
  return "?";
}

// Every campaign's status via the paginated List API — the dashboard
// and rollups page through the same read path as GET /v1/campaigns, so
// they also see campaigns submitted over HTTP.
std::vector<service::CampaignStatus> ListAll(
    const service::CampaignManager& manager) {
  std::vector<service::CampaignStatus> all;
  service::ListQuery query;
  query.limit = service::ListQuery::kMaxLimit;
  for (;;) {
    service::CampaignPage page = manager.List(query);
    if (page.statuses.empty()) break;
    query.offset += page.statuses.size();
    for (service::CampaignStatus& status : page.statuses) {
      all.push_back(std::move(status));
    }
    if (query.offset >= page.total) break;
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t n = 400;
  int64_t campaigns = 100;
  int64_t threads = 0;
  int64_t taggers = 8;
  double latency_us = 20.0;
  int64_t seed = 42;
  std::string journal_dir;
  bool recover = false;
  int64_t kill_after_polls = 0;
  int64_t compact_every = 0;
  int64_t compact_bytes = 0;
  int64_t max_compactions = 0;
  std::string scheduler = "rr";
  int64_t priority = 4;
  double deadline_ms = 0.0;
  int64_t http_port = -1;
  bool http_ingest = false;
  int64_t serve_seconds = 0;
  std::string metrics_json;
  std::string trace_json;
  std::string log_level = "info";
  util::FlagSet flags;
  flags.AddInt("n", &n, "resources in the shared catalogue");
  flags.AddInt("campaigns", &campaigns, "campaigns to run");
  util::AddThreadsFlag(&flags, &threads);
  flags.AddInt("taggers", &taggers, "simulated tagger threads");
  flags.AddDouble("latency_us", &latency_us, "mean tagger latency (us)");
  flags.AddInt("seed", &seed, "corpus / campaign seed");
  flags.AddString("journal_dir", &journal_dir,
                  "write-ahead journal directory ('' = no journaling)");
  flags.AddBool("recover", &recover,
                "recover journaled campaigns from --journal_dir instead of "
                "submitting a fresh fleet");
  flags.AddInt("kill_after_polls", &kill_after_polls,
               "simulate a crash: _Exit() after this many dashboard polls "
               "(0 = run to completion)");
  flags.AddInt("compact_every", &compact_every,
               "checkpoint-compact each journal every N applied "
               "completions (0 = never; needs --journal_dir)");
  flags.AddInt("compact_bytes", &compact_bytes,
               "checkpoint-compact each journal once it grows this many "
               "bytes past its last snapshot (0 = off; needs "
               "--journal_dir)");
  flags.AddInt("max_compactions", &max_compactions,
               "fleet-wide compaction budget: at most this many journal "
               "rewrites in flight at once (0 = unlimited)");
  flags.AddString("scheduler", &scheduler,
                  "cross-campaign stepping policy: rr|priority|edf");
  flags.AddInt("priority", &priority,
               "priority weight of the critical tier (every 4th "
               "campaign; the rest run at priority 1)");
  flags.AddDouble("deadline_ms", &deadline_ms,
                  "completion deadline for the critical tier, "
                  "milliseconds (0 = none)");
  flags.AddInt("http_port", &http_port,
               "serve the /v1 REST API on 127.0.0.1:<port> while the "
               "fleet runs (0 = ephemeral, printed at startup; -1 = off)");
  flags.AddBool("http_ingest", &http_ingest,
                "complete tasks through POST /v1/campaigns/{id}/"
                "completions instead of the simulated crowd (needs "
                "--http_port)");
  flags.AddInt("serve_seconds", &serve_seconds,
               "keep the HTTP server (and the dashboard) up at least "
               "this long, even with no campaigns running (0 = exit "
               "when the fleet drains)");
  flags.AddString("metrics_json", &metrics_json,
                  "write the fleet metrics snapshot (JSON) here, rewritten "
                  "each dashboard poll and once after drain ('' = off)");
  flags.AddString("trace_json", &trace_json,
                  "record quantum lifecycle spans and write Chrome "
                  "trace_event JSON here at exit ('' = off)");
  flags.AddString("log_level", &log_level,
                  "stderr verbosity: debug|info|warn|error|none");
  util::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\nusage:\n%s", parsed.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  util::LogLevel level;
  if (!util::ParseLogLevel(log_level, &level)) {
    std::fprintf(stderr, "bad --log_level=%s (want debug|info|warn|error|"
                 "none)\n", log_level.c_str());
    return 1;
  }
  util::SetLogLevel(level);
  if (!trace_json.empty()) obs::Trace::Enable(65536);

  // Shared catalogue: one corpus, one prepared dataset for all campaigns.
  sim::CorpusConfig corpus_config;
  corpus_config.num_resources = n;
  corpus_config.seed = static_cast<uint64_t>(seed);
  auto corpus = sim::Corpus::Generate(corpus_config);
  INCENTAG_CHECK(corpus.ok());
  auto prep = sim::PrepareFromCorpus(corpus.value(), sim::PrepConfig{});
  INCENTAG_CHECK(prep.ok());
  const sim::PreparedDataset& ds = prep.value();
  std::printf("catalogue: %zu stable resources\n", ds.size());

  sim::LoadGeneratorOptions load_options;
  load_options.num_taggers = static_cast<int>(taggers);
  load_options.mean_latency_us = latency_us;
  load_options.seed = static_cast<uint64_t>(seed) + 1;
  sim::CrowdLoadGenerator crowd(load_options);
  service::ExternalCompletionSource intake;
  if (http_ingest && http_port < 0) {
    std::fprintf(stderr, "--http_ingest needs --http_port\n");
    return 1;
  }

  auto policy = service::ParseSchedulerPolicy(scheduler);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }
  service::ManagerOptions manager_options;
  manager_options.num_threads = static_cast<int>(threads);
  manager_options.completions = http_ingest
                                    ? static_cast<service::CompletionSource*>(
                                          &intake)
                                    : &crowd;
  manager_options.journal_dir = journal_dir;
  manager_options.compact_every_n_completions = compact_every;
  manager_options.compact_journal_bytes = compact_bytes;
  manager_options.scheduler.policy = policy.value();
  manager_options.scheduler.max_concurrent_compactions =
      static_cast<int>(max_compactions);
  service::CampaignManager manager(manager_options);
  std::printf("manager: %d worker threads, %lld tagger threads, %s "
              "scheduler%s\n",
              manager.num_threads(), static_cast<long long>(taggers),
              service::SchedulerPolicyName(policy.value()),
              journal_dir.empty() ? ""
                                  : (" (journaling to " + journal_dir + ")")
                                        .c_str());

  // The /v1 REST edge: submit/list/status/metrics always; with
  // --http_ingest also the tasks/completions intake endpoints.
  std::unique_ptr<http::Server> server;
  if (http_port >= 0) {
    http::ServerOptions server_options;
    server_options.port = static_cast<uint16_t>(http_port);
    server = std::make_unique<http::Server>(server_options);
    http::CampaignRoutesOptions routes;
    routes.manager = &manager;
    if (http_ingest) routes.intake = &intake;
    routes.builder =
        [&ds](const service::api::SubmitCampaignRequest& request)
        -> util::Result<service::CampaignConfig> {
      service::CampaignConfig config;
      config.name = request.name;
      config.options.budget = request.budget;
      config.options.omega = request.omega;
      config.options.under_tagged_threshold =
          request.under_tagged_threshold;
      config.options.batch_size = request.batch_size;
      config.options.priority = request.priority;
      config.options.deadline_seconds = request.deadline_seconds;
      config.initial_posts = &ds.initial_posts;
      config.references = &ds.references;
      config.seed = request.seed;
      config.strategy = sim::MakeStrategyByName(
          request.strategy, ds.popularity, request.seed, &config.context);
      if (config.strategy == nullptr) {
        return util::Status::InvalidArgument("unknown strategy " +
                                             request.strategy);
      }
      config.stream =
          std::make_unique<core::VectorPostStream>(ds.MakeStream());
      return config;
    };
    http::RegisterCampaignRoutes(server.get(), routes);
    util::Status serving = server->Start();
    if (!serving.ok()) {
      std::fprintf(stderr, "http: %s\n", serving.ToString().c_str());
      return 1;
    }
    std::printf("serving /v1 on 127.0.0.1:%u%s\n", server->port(),
                http_ingest ? " (external completion intake)" : "");
  }

  std::vector<service::CampaignId> ids;
  if (recover) {
    // Crash recovery: rebuild every journaled campaign from its
    // SubmitRecord (the factory re-attaches the shared dataset and the
    // strategy named in the record), replay its completion trace, and
    // let the fleet continue live exactly where the journals end.
    INCENTAG_CHECK(!journal_dir.empty());
    auto recovered = manager.Recover(
        journal_dir,
        [&ds](const persist::SubmitRecord& record)
            -> util::Result<service::CampaignConfig> {
          service::CampaignConfig config;
          config.name = record.name;
          config.options = record.options;
          config.initial_posts = &ds.initial_posts;
          config.references = &ds.references;
          config.seed = record.seed;
          config.strategy =
              sim::MakeStrategyByName(record.strategy_name, ds.popularity,
                                      record.seed, &config.context);
          if (config.strategy == nullptr) {
            return util::Status::InvalidArgument("unknown strategy " +
                                                 record.strategy_name);
          }
          config.stream =
              std::make_unique<core::VectorPostStream>(ds.MakeStream());
          return config;
        });
    INCENTAG_CHECK(recovered.ok());
    ids = recovered.value();
    std::printf("recovered %zu journaled campaigns from %s\n", ids.size(),
                journal_dir.c_str());
    // The compaction payoff, per journal: bytes on disk and how many
    // tail records the snapshot seek left to replay.
    int64_t total_bytes = 0;
    int64_t total_replayed = 0;
    for (service::CampaignId id : ids) {
      auto status = manager.Status(id);
      if (!status.ok()) continue;
      const std::string path =
          journal_dir + "/campaign-" + std::to_string(id) + ".journal";
      std::error_code ec;
      const int64_t bytes =
          static_cast<int64_t>(std::filesystem::file_size(path, ec));
      total_bytes += ec ? 0 : bytes;
      total_replayed += status.value().records_replayed;
      std::printf("  %-24s journal %8lld bytes, %6lld records replayed\n",
                  status.value().name.c_str(),
                  static_cast<long long>(ec ? 0 : bytes),
                  static_cast<long long>(status.value().records_replayed));
    }
    std::printf("  total: %lld journal bytes, %lld records replayed\n",
                static_cast<long long>(total_bytes),
                static_cast<long long>(total_replayed));
  } else {
    // A fleet of heterogeneous campaigns: strategy, budget and batch size
    // all vary, the way per-community campaigns would.
    util::Rng rng(static_cast<uint64_t>(seed) + 2);
    for (int64_t i = 0; i < campaigns; ++i) {
      service::CampaignConfig config;
      config.options.budget =
          200 + static_cast<int64_t>(rng.NextBounded(800));
      config.options.omega = 5;
      config.options.batch_size =
          1 + static_cast<int64_t>(rng.NextBounded(64));
      config.initial_posts = &ds.initial_posts;
      config.references = &ds.references;
      config.stream =
          std::make_unique<core::VectorPostStream>(ds.MakeStream());
      config.seed = rng.NextUint64();  // journaled; rebuilds FC's crowd
      config.strategy =
          sim::MakeStrategyByName(sim::StrategyNameForKind(i), ds.popularity,
                                  config.seed, &config.context);
      // Mixed fleet: every 4th campaign is the "critical" tier — higher
      // priority (weighted quanta under --scheduler=priority) and, with
      // --deadline_ms, an EDF deadline. Both travel with the campaign
      // through the journal, so a recovered fleet keeps its classes.
      const bool critical = i % 4 == 0;
      if (critical) {
        config.options.priority = static_cast<int32_t>(priority);
        config.options.deadline_seconds = deadline_ms / 1000.0;
      }
      config.name = (critical ? "critical-" : "community-") +
                    std::to_string(i);
      auto id = manager.Submit(std::move(config));
      INCENTAG_CHECK(id.ok());
      ids.push_back(id.value());
    }
  }

  // Operator dashboard: poll snapshots while the fleet runs. Paged
  // through List, the same API the HTTP listing endpoint serves, so
  // campaigns POSTed over /v1 show up too. With --serve_seconds the
  // loop (and the HTTP server) stays up at least that long even after
  // the fleet drains.
  const int total_polls =
      std::max<int64_t>(100, serve_seconds * 20);
  for (int poll = 0; poll < total_polls; ++poll) {
    int64_t running = 0;
    int64_t spent = 0;
    int64_t tasks = 0;
    int64_t in_flight = 0;
    for (const service::CampaignStatus& s : ListAll(manager)) {
      if (s.state == service::CampaignState::kRunning) ++running;
      spent += s.budget_spent;
      tasks += s.tasks_completed;
      in_flight += s.tasks_in_flight;
    }
    std::printf(
        "[poll %2d] running=%lld spent=%lld tasks=%lld in_flight=%lld\n",
        poll, static_cast<long long>(running),
        static_cast<long long>(spent), static_cast<long long>(tasks),
        static_cast<long long>(in_flight));
    if (!metrics_json.empty()) {
      // Periodic dump: rewritten in place so an operator (or a crash
      // autopsy) always finds the latest snapshot.
      util::Status written = obs::WriteSnapshotJson(
          obs::Registry::Default().Snapshot(), metrics_json);
      if (!written.ok()) {
        INCENTAG_LOG_WARN("metrics dump failed: %s",
                          written.ToString().c_str());
      }
    }
    if (running == 0 && poll * 50 >= serve_seconds * 1000) break;
    if (kill_after_polls > 0 && poll + 1 >= kill_after_polls) {
      // Simulated crash: no destructors, no Shutdown, no final fsync —
      // whatever the JournalSink batched to disk is all that survives.
      // Re-run with --recover to resume the fleet from the journals.
      std::printf("simulating crash with %lld campaigns mid-run "
                  "(journals in %s)\n",
                  static_cast<long long>(running), journal_dir.c_str());
      std::fflush(stdout);  // only the dashboard; journals stay unsynced
      std::_Exit(42);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Ingest campaigns whose external taggers never finished would hold
  // WaitAll forever once the serve window closes; cancel the stragglers
  // so the rollup still prints.
  if (http_ingest) {
    for (const service::CampaignStatus& s : ListAll(manager)) {
      if (s.state == service::CampaignState::kRunning) {
        (void)manager.Cancel(s.id);
      }
    }
    intake.Stop();
  }
  manager.WaitAll();

  // Per-strategy rollup across the fleet.
  struct Agg {
    int64_t campaigns = 0;
    int64_t tasks = 0;
    double quality = 0.0;
    int64_t wasted = 0;
    double seconds = 0.0;
  };
  std::map<std::string, Agg> by_strategy;
  const std::vector<service::CampaignStatus> fleet = ListAll(manager);
  for (const service::CampaignStatus& s : fleet) {
    if (s.state != service::CampaignState::kDone) {
      std::fprintf(stderr, "%s ended %s: %s\n", s.name.c_str(),
                   StateName(s.state), s.error.c_str());
      continue;
    }
    Agg& agg = by_strategy[s.strategy];
    ++agg.campaigns;
    agg.tasks += s.tasks_completed;
    agg.quality += s.metrics.avg_quality;
    agg.wasted += s.metrics.wasted_posts;
    agg.seconds += s.elapsed_seconds;
  }
  std::printf("\n%-8s %10s %10s %12s %10s %10s\n", "strategy", "campaigns",
              "tasks", "avg quality", "wasted", "avg secs");
  for (const auto& [name, agg] : by_strategy) {
    std::printf("%-8s %10lld %10lld %12.4f %10lld %10.3f\n", name.c_str(),
                static_cast<long long>(agg.campaigns),
                static_cast<long long>(agg.tasks),
                agg.quality / static_cast<double>(agg.campaigns),
                static_cast<long long>(agg.wasted),
                agg.seconds / static_cast<double>(agg.campaigns));
  }

  // Scheduling rollup: quanta and deadline outcomes per class, so
  // --scheduler=rr vs priority vs edf is directly comparable.
  struct ClassAgg {
    int64_t campaigns = 0;
    int64_t quanta = 0;
    int64_t misses = 0;
    double worst_slack = 0.0;
    bool any_deadline = false;
  };
  ClassAgg critical_agg;
  ClassAgg background_agg;
  for (const service::CampaignStatus& s : fleet) {
    const bool is_critical =
        s.priority > 1 || s.name.rfind("critical-", 0) == 0;
    ClassAgg& agg = is_critical ? critical_agg : background_agg;
    ++agg.campaigns;
    agg.quanta += s.quanta_run;
    if (is_critical && deadline_ms > 0.0) {
      if (s.deadline_slack_seconds < 0.0) ++agg.misses;
      if (!agg.any_deadline ||
          s.deadline_slack_seconds < agg.worst_slack) {
        agg.worst_slack = s.deadline_slack_seconds;
      }
      agg.any_deadline = true;
    }
  }
  std::printf("\nscheduler rollup (%s):\n",
              service::SchedulerPolicyName(policy.value()));
  auto print_class = [](const char* label, const ClassAgg& agg) {
    std::printf("  %-10s %3lld campaigns, %6lld quanta", label,
                static_cast<long long>(agg.campaigns),
                static_cast<long long>(agg.quanta));
    if (agg.any_deadline) {
      std::printf(", %lld deadline misses, worst slack %.3fs",
                  static_cast<long long>(agg.misses), agg.worst_slack);
    }
    std::printf("\n");
  };
  print_class("critical", critical_agg);
  print_class("background", background_agg);

  if (server != nullptr) server->Stop();
  crowd.Stop();
  manager.Shutdown();
  // Final dumps after the drain, so the files cover the whole run.
  if (!metrics_json.empty()) {
    util::Status written = obs::WriteSnapshotJson(
        obs::Registry::Default().Snapshot(), metrics_json);
    INCENTAG_CHECK(written.ok());
    std::printf("metrics snapshot written to %s\n", metrics_json.c_str());
  }
  if (!trace_json.empty()) {
    util::Status written = obs::Trace::WriteChromeJson(trace_json);
    INCENTAG_CHECK(written.ok());
    std::printf("trace written to %s (chrome://tracing)\n",
                trace_json.c_str());
  }
  std::printf("\nall %zu campaigns drained; %lld tasks completed by the "
              "crowd\n",
              fleet.size(), static_cast<long long>(crowd.completed()));
  return 0;
}
